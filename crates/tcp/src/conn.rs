//! The TCP connection state machine.
//!
//! The connection is written sans-I/O: every entry point returns the
//! segments to transmit and the events to raise, and the caller (the host
//! node) owns packetization and timers. This makes the full RFC 793 state
//! machine — with Jacobson congestion control, fast retransmit/recovery,
//! persist probes and delayed ACKs — testable without a network.

use comma_rt::Bytes;
use comma_netsim::packet::{TcpFlags, TcpOption, TcpSegment};
use comma_netsim::stats::Summary;
use comma_netsim::time::{SimDuration, SimTime};

use crate::buffer::{RecvBuffer, SendBuffer};
use crate::config::{Recovery, TcpConfig};
use crate::rto::RtoEstimator;
use crate::seq::{seq_diff, seq_ge, seq_gt, seq_le, seq_lt, seq_max};

/// RFC 793 connection states.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TcpState {
    /// No connection.
    Closed,
    /// Waiting for a SYN.
    Listen,
    /// Active open sent, awaiting SYN|ACK.
    SynSent,
    /// SYN received, SYN|ACK sent, awaiting ACK.
    SynRcvd,
    /// Data transfer.
    Established,
    /// Our FIN sent, awaiting its ACK (or peer FIN).
    FinWait1,
    /// Our FIN acked, awaiting peer FIN.
    FinWait2,
    /// Both FINs crossed; awaiting ACK of ours.
    Closing,
    /// Final 2·MSL hold.
    TimeWait,
    /// Peer FIN received; we may still send.
    CloseWait,
    /// Our FIN sent after peer's; awaiting its ACK.
    LastAck,
}

/// Events surfaced to the owning application.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConnEvent {
    /// The three-way handshake completed.
    Connected,
    /// In-order data is available to read.
    DataReadable,
    /// The peer closed its sending side (FIN received).
    PeerClosed,
    /// The connection fully closed.
    Closed,
    /// The connection was reset or the handshake failed.
    Reset,
}

/// Output of a connection entry point.
#[derive(Debug, Default)]
pub struct Effects {
    /// Segments to transmit, in order.
    pub segments: Vec<TcpSegment>,
    /// Events to raise to the application.
    pub events: Vec<ConnEvent>,
}

impl Effects {
    /// Appends another effect set (segments and events preserve order).
    pub fn merge(&mut self, other: Effects) {
        self.segments.extend(other.segments);
        self.events.extend(other.events);
    }
}

/// Counters kept per connection.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConnStats {
    /// Segments emitted (including retransmissions and pure ACKs).
    pub segs_out: u64,
    /// Segments processed.
    pub segs_in: u64,
    /// Unique payload bytes sent (first transmission only).
    pub bytes_sent: u64,
    /// Payload bytes delivered to the application.
    pub bytes_delivered: u64,
    /// Retransmitted segments (timeout + fast retransmit).
    pub retransmits: u64,
    /// Retransmission timeouts.
    pub timeouts: u64,
    /// Fast retransmits triggered by triple duplicate ACKs.
    pub fast_retransmits: u64,
    /// Duplicate ACKs received.
    pub dup_acks: u64,
    /// Zero-window persist probes sent.
    pub persist_probes: u64,
    /// RTO expiries converted to persist-mode freezes by a zero window.
    pub zero_window_freezes: u64,
    /// Round-trip-time samples.
    pub rtt: Summary,
}

/// A TCP connection endpoint.
#[derive(Clone, Debug)]
pub struct TcpConnection {
    cfg: TcpConfig,
    state: TcpState,
    // Send state.
    iss: u32,
    snd_una: u32,
    snd_nxt: u32,
    /// Highest sequence ever transmitted (BSD's `snd_max`): after a
    /// go-back-N pullback, sequences below it are retransmissions and must
    /// not be RTT-timed (Karn's rule).
    snd_max: u32,
    snd_wnd: u32,
    snd_wl1: u32,
    snd_wl2: u32,
    send_buf: SendBuffer,
    fin_pending: bool,
    fin_seq: Option<u32>,
    // Congestion control.
    cwnd: u32,
    ssthresh: u32,
    dup_acks: u32,
    in_fast_recovery: bool,
    recover: u32,
    // Timers and estimation.
    rto: RtoEstimator,
    rto_deadline: Option<SimTime>,
    rtt_probe: Option<(u32, SimTime)>,
    persist_deadline: Option<SimTime>,
    persist_shift: u32,
    delack_deadline: Option<SimTime>,
    unacked_segs: u32,
    time_wait_deadline: Option<SimTime>,
    syn_retries: u32,
    // Receive state.
    recv: Option<RecvBuffer>,
    peer_fin_seq: Option<u32>,
    peer_mss: u32,
    /// Counters.
    pub stats: ConnStats,
}

const MAX_SYN_RETRIES: u32 = 6;

impl TcpConnection {
    /// Folds every behavior-relevant field — sequence state, buffers,
    /// congestion control, timer deadlines — into a canonical state
    /// fingerprint for model-checking visited-set pruning. Counters
    /// (`stats`) are deliberately excluded: they never influence future
    /// behavior, and hashing them would keep converging interleavings
    /// artificially distinct.
    pub fn state_digest(&self, h: &mut comma_rt::digest::Fnv1a) {
        fn time(h: &mut comma_rt::digest::Fnv1a, t: &Option<SimTime>) {
            h.update_u64(t.map_or(u64::MAX, |t| t.as_micros()));
        }
        fn seq(h: &mut comma_rt::digest::Fnv1a, s: &Option<u32>) {
            h.update_u64(s.map_or(u64::MAX, |s| s as u64));
        }
        h.update_u64(self.state as u64);
        h.update_u64(self.iss as u64);
        h.update_u64(self.snd_una as u64);
        h.update_u64(self.snd_nxt as u64);
        h.update_u64(self.snd_max as u64);
        h.update_u64(self.snd_wnd as u64);
        h.update_u64(self.snd_wl1 as u64);
        h.update_u64(self.snd_wl2 as u64);
        self.send_buf.state_digest(h);
        h.update_u64(self.fin_pending as u64);
        seq(h, &self.fin_seq);
        h.update_u64(self.cwnd as u64);
        h.update_u64(self.ssthresh as u64);
        h.update_u64(self.dup_acks as u64);
        h.update_u64(self.in_fast_recovery as u64);
        h.update_u64(self.recover as u64);
        self.rto.state_digest(h);
        time(h, &self.rto_deadline);
        match &self.rtt_probe {
            None => {
                h.update_u64(u64::MAX);
            }
            Some((s, t)) => {
                h.update_u64(*s as u64);
                h.update_u64(t.as_micros());
            }
        }
        time(h, &self.persist_deadline);
        h.update_u64(self.persist_shift as u64);
        time(h, &self.delack_deadline);
        h.update_u64(self.unacked_segs as u64);
        time(h, &self.time_wait_deadline);
        h.update_u64(self.syn_retries as u64);
        match &self.recv {
            None => {
                h.update_u64(u64::MAX);
            }
            Some(r) => r.state_digest(h),
        }
        seq(h, &self.peer_fin_seq);
        h.update_u64(self.peer_mss as u64);
    }
}

impl TcpConnection {
    /// Creates a closed connection with the given configuration and initial
    /// send sequence number.
    pub fn new(cfg: TcpConfig, iss: u32) -> Self {
        let cwnd = cfg.initial_cwnd();
        let rto = RtoEstimator::new(cfg.initial_rto, cfg.min_rto, cfg.max_rto);
        TcpConnection {
            peer_mss: cfg.mss as u32,
            cfg,
            state: TcpState::Closed,
            iss,
            snd_una: iss,
            snd_nxt: iss,
            snd_max: iss,
            snd_wnd: 0,
            snd_wl1: 0,
            snd_wl2: 0,
            send_buf: SendBuffer::new(iss.wrapping_add(1)),
            fin_pending: false,
            fin_seq: None,
            cwnd,
            ssthresh: 64 * 1024,
            dup_acks: 0,
            in_fast_recovery: false,
            recover: iss,
            rto,
            rto_deadline: None,
            rtt_probe: None,
            persist_deadline: None,
            persist_shift: 0,
            delack_deadline: None,
            unacked_segs: 0,
            time_wait_deadline: None,
            syn_retries: 0,
            recv: None,
            peer_fin_seq: None,
            stats: ConnStats::default(),
        }
    }

    /// Current state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// Returns `true` once the connection has fully terminated.
    pub fn is_closed(&self) -> bool {
        self.state == TcpState::Closed
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u32 {
        self.cwnd
    }

    /// Current slow-start threshold in bytes.
    pub fn ssthresh(&self) -> u32 {
        self.ssthresh
    }

    /// Peer-advertised send window in bytes.
    pub fn snd_wnd(&self) -> u32 {
        self.snd_wnd
    }

    /// Bytes in flight (sent but unacknowledged).
    pub fn flight_size(&self) -> u32 {
        seq_diff(self.snd_nxt, self.snd_una)
    }

    /// Bytes buffered for sending but not yet transmitted.
    pub fn unsent_bytes(&self) -> u32 {
        seq_diff(self.send_buf.end_seq(), self.data_nxt())
    }

    /// Smoothed RTT estimate, if measured.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.rto.srtt()
    }

    /// Current retransmission timeout (including backoff and clamping).
    pub fn rto(&self) -> SimDuration {
        self.rto.rto()
    }

    /// `snd_nxt` restricted to payload space (excludes a sent FIN).
    fn data_nxt(&self) -> u32 {
        match self.fin_seq {
            Some(fin) if seq_gt(self.snd_nxt, fin) => fin,
            _ => self.snd_nxt,
        }
    }

    // ------------------------------------------------------------------
    // Opening.
    // ------------------------------------------------------------------

    /// Performs an active open: sends a SYN.
    pub fn connect(&mut self, now: SimTime) -> Effects {
        debug_assert_eq!(self.state, TcpState::Closed);
        self.state = TcpState::SynSent;
        let mut eff = Effects::default();
        let mut syn = self.make_seg(self.iss, TcpFlags::SYN, Bytes::new());
        syn.options.push(TcpOption::Mss(self.cfg.mss));
        syn.window = self.cfg.recv_buffer.min(65_535) as u16;
        self.snd_nxt = self.iss.wrapping_add(1);
        self.snd_max = self.snd_nxt;
        self.push_seg(&mut eff, syn);
        self.arm_rto(now);
        eff
    }

    /// Performs a passive open: waits for a SYN.
    pub fn listen(&mut self) {
        debug_assert_eq!(self.state, TcpState::Closed);
        self.state = TcpState::Listen;
    }

    // ------------------------------------------------------------------
    // Application interface.
    // ------------------------------------------------------------------

    /// Queues application data and transmits whatever the windows allow.
    pub fn write(&mut self, now: SimTime, data: &[u8]) -> Effects {
        let mut eff = Effects::default();
        if self.fin_pending || self.fin_seq.is_some() {
            return eff; // Write after close is discarded.
        }
        self.send_buf.push(data);
        self.try_send(now, &mut eff);
        eff
    }

    /// Closes the sending side: a FIN is queued after any buffered data.
    pub fn close(&mut self, now: SimTime) -> Effects {
        let mut eff = Effects::default();
        match self.state {
            TcpState::Closed | TcpState::Listen => {
                self.state = TcpState::Closed;
                eff.events.push(ConnEvent::Closed);
            }
            TcpState::SynSent => {
                self.state = TcpState::Closed;
                eff.events.push(ConnEvent::Closed);
            }
            _ => {
                self.fin_pending = true;
                self.try_send(now, &mut eff);
            }
        }
        eff
    }

    /// Aborts the connection with a RST.
    pub fn abort(&mut self) -> Effects {
        let mut eff = Effects::default();
        if !matches!(self.state, TcpState::Closed | TcpState::Listen) {
            let rst = self.make_seg(self.snd_nxt, TcpFlags::RST | TcpFlags::ACK, Bytes::new());
            self.push_seg(&mut eff, rst);
        }
        self.state = TcpState::Closed;
        eff.events.push(ConnEvent::Closed);
        eff
    }

    /// Takes readable bytes for the application. Reading may reopen the
    /// advertised window, in which case a window-update ACK is emitted.
    pub fn take_data(&mut self, _now: SimTime) -> (Bytes, Effects) {
        let mut eff = Effects::default();
        let Some(recv) = &mut self.recv else {
            return (Bytes::new(), eff);
        };
        let before = recv.window();
        let data = recv.take();
        self.stats.bytes_delivered += data.len() as u64;
        let after = self.recv.as_ref().expect("recv").window();
        // Send a window update when the window grows from below one MSS to
        // at least one MSS (silly-window avoidance on the receive side).
        if before < self.peer_mss.min(self.cfg.mss as u32) && after >= self.cfg.mss as u32 {
            let ack = self.make_ack();
            self.push_seg(&mut eff, ack);
        }
        (data, eff)
    }

    // ------------------------------------------------------------------
    // Segment processing.
    // ------------------------------------------------------------------

    /// Processes an incoming segment.
    pub fn on_segment(&mut self, now: SimTime, seg: &TcpSegment) -> Effects {
        self.stats.segs_in += 1;
        let mut eff = Effects::default();
        match self.state {
            TcpState::Closed => {}
            TcpState::Listen => self.segment_in_listen(seg, &mut eff),
            TcpState::SynSent => self.segment_in_syn_sent(now, seg, &mut eff),
            _ => self.segment_in_synchronized(now, seg, &mut eff),
        }
        eff
    }

    fn segment_in_listen(&mut self, seg: &TcpSegment, eff: &mut Effects) {
        if !seg.flags.syn() || seg.flags.rst() {
            return;
        }
        if let Some(mss) = seg.mss_option() {
            self.peer_mss = mss as u32;
        }
        let irs = seg.seq;
        self.recv = Some(RecvBuffer::new(irs.wrapping_add(1), self.cfg.recv_buffer));
        self.update_snd_wnd_unchecked(seg);
        self.state = TcpState::SynRcvd;
        let mut synack = self.make_seg(self.iss, TcpFlags::SYN | TcpFlags::ACK, Bytes::new());
        synack.options.push(TcpOption::Mss(self.cfg.mss));
        self.snd_nxt = self.iss.wrapping_add(1);
        self.snd_max = self.snd_nxt;
        self.push_seg(eff, synack);
    }

    fn segment_in_syn_sent(&mut self, now: SimTime, seg: &TcpSegment, eff: &mut Effects) {
        if seg.flags.rst() {
            self.enter_closed(eff, ConnEvent::Reset);
            return;
        }
        if !seg.flags.syn() {
            return;
        }
        if seg.flags.ack() && seg.ack != self.iss.wrapping_add(1) {
            // Half-open remnant: reset it.
            let rst = TcpSegment::new(0, 0, seg.ack, 0, TcpFlags::RST);
            self.push_seg(eff, rst);
            return;
        }
        if let Some(mss) = seg.mss_option() {
            self.peer_mss = mss as u32;
        }
        let irs = seg.seq;
        self.recv = Some(RecvBuffer::new(irs.wrapping_add(1), self.cfg.recv_buffer));
        if seg.flags.ack() {
            self.snd_una = seg.ack;
            self.send_buf.ack_to(seg.ack);
            self.update_snd_wnd_unchecked(seg);
            self.state = TcpState::Established;
            self.rto_deadline = None;
            self.rto.clear_backoff();
            eff.events.push(ConnEvent::Connected);
            let ack = self.make_ack();
            self.push_seg(eff, ack);
            self.try_send(now, eff);
        } else {
            // Simultaneous open.
            self.state = TcpState::SynRcvd;
            let mut synack = self.make_seg(self.iss, TcpFlags::SYN | TcpFlags::ACK, Bytes::new());
            synack.options.push(TcpOption::Mss(self.cfg.mss));
            self.push_seg(eff, synack);
        }
    }

    fn segment_in_synchronized(&mut self, now: SimTime, seg: &TcpSegment, eff: &mut Effects) {
        if seg.flags.rst() {
            self.enter_closed(eff, ConnEvent::Reset);
            return;
        }
        if seg.flags.syn() {
            // Retransmitted SYN while in SynRcvd: resend the SYN|ACK.
            if self.state == TcpState::SynRcvd {
                let mut synack =
                    self.make_seg(self.iss, TcpFlags::SYN | TcpFlags::ACK, Bytes::new());
                synack.options.push(TcpOption::Mss(self.cfg.mss));
                self.push_seg(eff, synack);
            }
            return;
        }
        if seg.flags.ack() {
            self.process_ack(now, seg, eff);
            if self.state == TcpState::Closed {
                return;
            }
        }
        if !seg.payload.is_empty() {
            self.process_data(now, seg, eff);
        } else if !seg.flags.fin() {
            // RFC 9293 §3.10.7.4: an empty segment entirely before RCV.NXT
            // is unacceptable and must be answered with a current ACK. This
            // regenerates a cumulative ACK lost in transit — without it a
            // retransmission whose transformed replay arrives empty (e.g. a
            // TTSF range already acked and trimmed) elicits nothing and the
            // connection deadlocks.
            if let Some(recv) = &self.recv {
                if seq_lt(seg.seq, recv.rcv_nxt()) {
                    let ack = self.make_ack();
                    self.push_seg(eff, ack);
                }
            }
        }
        if seg.flags.fin() {
            self.process_fin(now, seg, eff);
        }
        self.try_send(now, eff);
    }

    fn process_ack(&mut self, now: SimTime, seg: &TcpSegment, eff: &mut Effects) {
        let ack = seg.ack;
        if self.state == TcpState::SynRcvd && ack == self.iss.wrapping_add(1) {
            self.snd_una = ack;
            self.update_snd_wnd_unchecked(seg);
            self.state = TcpState::Established;
            self.rto_deadline = None;
            self.rto.clear_backoff();
            eff.events.push(ConnEvent::Connected);
        }
        // Continue: the same segment may carry data. Validate against
        // snd_max, not snd_nxt: after a go-back-N pullback the receiver may
        // legitimately ACK buffered out-of-order data beyond snd_nxt.
        if seq_gt(ack, self.snd_max) {
            // Acking data we never sent: tell the peer where we are.
            let a = self.make_ack();
            self.push_seg(eff, a);
            return;
        }
        if seq_le(ack, self.snd_una) {
            // Possible duplicate ACK (RFC 5681 heuristics).
            let is_dup = ack == self.snd_una
                && seg.payload.is_empty()
                && !seg.flags.syn()
                && !seg.flags.fin()
                && self.flight_size() > 0
                && seg.window as u32 == self.snd_wnd;
            if is_dup {
                self.stats.dup_acks += 1;
                self.dup_acks += 1;
                if self.dup_acks == 3 {
                    self.fast_retransmit(now, eff);
                } else if self.dup_acks > 3 && self.in_fast_recovery {
                    // Window inflation per extra duplicate ACK.
                    self.cwnd = self.cwnd.saturating_add(self.cfg.mss as u32);
                }
            }
            self.update_snd_wnd(seg, now);
            return;
        }

        // New data acknowledged. Note RFC 6298 §5.7: the ACK may cover a
        // retransmission, whose RTT is unmeasurable under Karn's rule, so
        // the exponential backoff must survive until `rto.sample()` takes a
        // fresh measurement — clearing it here would let one ambiguous ACK
        // collapse a backed-off timer on a path that is still losing.
        let acked = seq_diff(ack, self.snd_una);
        self.snd_una = ack;
        if seq_lt(self.snd_nxt, self.snd_una) {
            // The ACK overtook a pulled-back snd_nxt (the receiver held the
            // "lost" tail after all): resume sending from the edge.
            self.snd_nxt = self.snd_una;
        }
        self.send_buf.ack_to(ack);
        self.dup_acks = 0;
        self.persist_shift = 0;

        if let Some((probe_seq, sent_at)) = self.rtt_probe {
            if seq_ge(ack, probe_seq) {
                let rtt = now.saturating_since(sent_at);
                self.rto.sample(rtt);
                self.stats.rtt.add(rtt.as_secs_f64() * 1e3);
                self.rtt_probe = None;
            }
        }

        if self.in_fast_recovery {
            if seq_ge(ack, self.recover) {
                self.in_fast_recovery = false;
                self.cwnd = self.ssthresh;
            } else {
                // Partial ACK (NewReno-style): retransmit the next hole and
                // deflate the window by the amount acked.
                self.retransmit_head(now, eff);
                self.cwnd = self
                    .cwnd
                    .saturating_sub(acked)
                    .saturating_add(self.cfg.mss as u32);
            }
        } else {
            // Normal congestion-window growth.
            if self.cwnd < self.ssthresh {
                self.cwnd = self.cwnd.saturating_add(acked.min(self.cfg.mss as u32));
            } else {
                let inc = ((self.cfg.mss as u64 * self.cfg.mss as u64) / self.cwnd.max(1) as u64)
                    .max(1) as u32;
                self.cwnd = self.cwnd.saturating_add(inc);
            }
        }

        self.update_snd_wnd(seg, now);

        // FIN acknowledgement transitions.
        if let Some(fin) = self.fin_seq {
            if seq_gt(ack, fin) {
                match self.state {
                    TcpState::FinWait1 => self.state = TcpState::FinWait2,
                    TcpState::Closing => self.enter_time_wait(now),
                    TcpState::LastAck => {
                        self.enter_closed(eff, ConnEvent::Closed);
                        return;
                    }
                    _ => {}
                }
            }
        }

        if self.flight_size() == 0 {
            self.rto_deadline = None;
        } else {
            self.arm_rto(now);
        }
    }

    fn update_snd_wnd_unchecked(&mut self, seg: &TcpSegment) {
        self.snd_wnd = seg.window as u32;
        self.snd_wl1 = seg.seq;
        self.snd_wl2 = seg.ack;
    }

    fn update_snd_wnd(&mut self, seg: &TcpSegment, now: SimTime) {
        // RFC 793 window-update check prevents stale segments from
        // shrinking the window.
        if seq_lt(self.snd_wl1, seg.seq)
            || (self.snd_wl1 == seg.seq && seq_le(self.snd_wl2, seg.ack))
        {
            let was_zero = self.snd_wnd == 0;
            self.update_snd_wnd_unchecked(seg);
            if self.snd_wnd == 0 {
                if self.pending_send_bytes() > 0 && self.persist_deadline.is_none() {
                    self.arm_persist(now);
                }
            } else {
                self.persist_deadline = None;
                self.persist_shift = 0;
                if was_zero && self.flight_size() > 0 {
                    // Window reopened while data was in flight (it may have
                    // been lost during a zero-window freeze): make sure the
                    // retransmission timer is running again.
                    self.arm_rto(now);
                }
            }
        }
    }

    fn pending_send_bytes(&self) -> u32 {
        seq_diff(self.send_buf.end_seq(), self.data_nxt())
    }

    fn process_data(&mut self, now: SimTime, seg: &TcpSegment, eff: &mut Effects) {
        if !matches!(
            self.state,
            TcpState::Established | TcpState::FinWait1 | TcpState::FinWait2
        ) {
            return;
        }
        let Some(recv) = &mut self.recv else { return };
        let advanced = recv.receive(seg.seq, &seg.payload);
        let out_of_order = !advanced || recv.has_holes();
        if advanced && recv.readable() > 0 {
            eff.events.push(ConnEvent::DataReadable);
        }
        // A FIN that once arrived beyond a hole becomes acceptable when the
        // hole fills.
        if let Some(fin) = self.peer_fin_seq {
            let rcv_nxt = self.recv.as_ref().expect("recv").rcv_nxt();
            if seq_le(fin, rcv_nxt) {
                self.accept_fin(now, eff);
            }
        }
        if out_of_order || !self.cfg.delayed_ack {
            // Immediate ACK: duplicate/straddling segments must generate
            // the duplicate ACKs fast retransmit depends on.
            let ack = self.make_ack();
            self.push_seg(eff, ack);
            self.unacked_segs = 0;
            self.delack_deadline = None;
        } else {
            self.unacked_segs += 1;
            if self.unacked_segs >= 2 {
                let ack = self.make_ack();
                self.push_seg(eff, ack);
                self.unacked_segs = 0;
                self.delack_deadline = None;
            } else if self.delack_deadline.is_none() {
                self.delack_deadline = Some(now + self.cfg.delack_timeout);
            }
        }
    }

    fn process_fin(&mut self, now: SimTime, seg: &TcpSegment, eff: &mut Effects) {
        let Some(recv) = &self.recv else { return };
        let fin_seq = seg.seq.wrapping_add(seg.payload.len() as u32);
        if seq_gt(fin_seq, recv.rcv_nxt()) {
            // FIN beyond a hole: remember it; it will be processed when the
            // hole fills (the peer will retransmit).
            self.peer_fin_seq = Some(fin_seq);
            return;
        }
        if seq_lt(fin_seq, recv.rcv_nxt()) {
            // Old duplicate FIN: re-ACK.
            let ack = self.make_ack();
            self.push_seg(eff, ack);
            return;
        }
        self.accept_fin(now, eff);
    }

    fn accept_fin(&mut self, now: SimTime, eff: &mut Effects) {
        // Consume the FIN's sequence slot, keeping unread bytes intact.
        self.recv.as_mut().expect("recv").consume_fin();
        self.peer_fin_seq = None;
        let ack = self.make_ack();
        self.push_seg(eff, ack);
        match self.state {
            TcpState::Established => {
                self.state = TcpState::CloseWait;
                eff.events.push(ConnEvent::PeerClosed);
            }
            TcpState::FinWait1 => {
                // Our FIN not yet acked.
                self.state = TcpState::Closing;
                eff.events.push(ConnEvent::PeerClosed);
            }
            TcpState::FinWait2 => {
                eff.events.push(ConnEvent::PeerClosed);
                self.enter_time_wait(now);
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Transmission.
    // ------------------------------------------------------------------

    fn try_send(&mut self, now: SimTime, eff: &mut Effects) {
        if !matches!(
            self.state,
            TcpState::Established
                | TcpState::CloseWait
                | TcpState::FinWait1
                | TcpState::Closing
                | TcpState::LastAck
        ) {
            return;
        }
        let mss = self.cfg.mss as u32;
        let wnd = self.snd_wnd.min(self.cwnd);
        loop {
            let flight = self.flight_size();
            // Data between snd_nxt and the buffer's end still needs (re-)
            // transmission; after a go-back-N pullback this includes
            // sequence space sent before the timeout.
            let end = self.send_buf.end_seq();
            let unsent = if seq_lt(self.snd_nxt, end) {
                seq_diff(end, self.snd_nxt)
            } else {
                0
            };
            if unsent > 0 && flight < wnd {
                let room = wnd - flight;
                let take = unsent.min(mss).min(room) as usize;
                if take == 0 {
                    break;
                }
                let payload = self.send_buf.slice(self.snd_nxt, take);
                debug_assert_eq!(payload.len(), take);
                let mut flags = TcpFlags::ACK;
                if unsent as usize == take {
                    flags = flags | TcpFlags::PSH;
                }
                let seg = self.make_seg(self.snd_nxt, flags, payload);
                // Only never-before-sent data may be RTT-timed: a re-send
                // of pulled-back sequence space has an ambiguous ACK under
                // Karn's rule.
                let new_data = seq_ge(self.snd_nxt, self.snd_max);
                self.snd_nxt = self.snd_nxt.wrapping_add(take as u32);
                self.snd_max = seq_max(self.snd_max, self.snd_nxt);
                self.stats.bytes_sent += take as u64;
                if new_data && self.rtt_probe.is_none() {
                    self.rtt_probe = Some((self.snd_nxt, now));
                }
                self.push_seg(eff, seg);
                self.arm_rto_if_unarmed(now);
                continue;
            }
            if unsent == 0 {
                match self.fin_seq {
                    // Re-emit a FIN that a pullback rewound over.
                    Some(fin) if self.snd_nxt == fin => {
                        let seg =
                            self.make_seg(fin, TcpFlags::FIN | TcpFlags::ACK, Bytes::new());
                        self.snd_nxt = fin.wrapping_add(1);
                        self.push_seg(eff, seg);
                        self.arm_rto_if_unarmed(now);
                    }
                    // Queue a FIN once all data has been transmitted.
                    None if self.fin_pending => {
                        let seg = self.make_seg(
                            self.snd_nxt,
                            TcpFlags::FIN | TcpFlags::ACK,
                            Bytes::new(),
                        );
                        self.fin_seq = Some(self.snd_nxt);
                        self.snd_nxt = self.snd_nxt.wrapping_add(1);
                        self.snd_max = seq_max(self.snd_max, self.snd_nxt);
                        self.fin_pending = false;
                        match self.state {
                            TcpState::Established => self.state = TcpState::FinWait1,
                            TcpState::CloseWait => self.state = TcpState::LastAck,
                            _ => {}
                        }
                        self.push_seg(eff, seg);
                        self.arm_rto_if_unarmed(now);
                    }
                    _ => {}
                }
            }
            break;
        }
        // Zero window with pending data: ensure the persist timer runs.
        if self.snd_wnd == 0
            && self.pending_send_bytes() > 0
            && self.persist_deadline.is_none()
            && self.flight_size() == 0
        {
            self.arm_persist(now);
        }
    }

    fn fast_retransmit(&mut self, now: SimTime, eff: &mut Effects) {
        self.stats.fast_retransmits += 1;
        let flight = self.flight_size();
        self.ssthresh = (flight / 2).max(2 * self.cfg.mss as u32);
        self.recover = self.snd_nxt;
        match self.cfg.recovery {
            Recovery::Reno => {
                self.in_fast_recovery = true;
                self.cwnd = self.ssthresh + 3 * self.cfg.mss as u32;
            }
            Recovery::Tahoe => {
                self.cwnd = self.cfg.mss as u32;
                self.in_fast_recovery = false;
            }
        }
        self.retransmit_head(now, eff);
    }

    fn retransmit_head(&mut self, now: SimTime, eff: &mut Effects) {
        self.stats.retransmits += 1;
        self.rtt_probe = None; // Karn's rule.
        let mss = self.cfg.mss as usize;
        let payload = self.send_buf.slice(self.snd_una, mss);
        let seg = if payload.is_empty() {
            match self.fin_seq {
                Some(fin) if fin == self.snd_una => {
                    if seq_lt(self.snd_nxt, fin.wrapping_add(1)) {
                        self.snd_nxt = fin.wrapping_add(1);
                    }
                    self.make_seg(fin, TcpFlags::FIN | TcpFlags::ACK, Bytes::new())
                }
                _ => {
                    if self.state == TcpState::SynSent {
                        let mut syn = self.make_seg(self.iss, TcpFlags::SYN, Bytes::new());
                        syn.options.push(TcpOption::Mss(self.cfg.mss));
                        syn
                    } else if self.state == TcpState::SynRcvd {
                        let mut synack =
                            self.make_seg(self.iss, TcpFlags::SYN | TcpFlags::ACK, Bytes::new());
                        synack.options.push(TcpOption::Mss(self.cfg.mss));
                        synack
                    } else {
                        return;
                    }
                }
            }
        } else {
            // After a go-back-N pullback snd_nxt sits at snd_una; account
            // for the resent head so flight_size() reflects it.
            let end = self.snd_una.wrapping_add(payload.len() as u32);
            if seq_lt(self.snd_nxt, end) {
                self.snd_nxt = end;
            }
            self.make_seg(self.snd_una, TcpFlags::ACK, payload)
        };
        self.push_seg(eff, seg);
        self.arm_rto(now);
    }

    // ------------------------------------------------------------------
    // Timers.
    // ------------------------------------------------------------------

    /// Returns the earliest pending timer deadline, if any.
    pub fn next_deadline(&self) -> Option<SimTime> {
        [
            self.rto_deadline,
            self.persist_deadline,
            self.delack_deadline,
            self.time_wait_deadline,
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// Services expired timers; safe to call spuriously.
    pub fn on_timer(&mut self, now: SimTime) -> Effects {
        let mut eff = Effects::default();
        if let Some(d) = self.time_wait_deadline {
            if now >= d {
                self.time_wait_deadline = None;
                self.enter_closed(&mut eff, ConnEvent::Closed);
                return eff;
            }
        }
        if let Some(d) = self.delack_deadline {
            if now >= d {
                self.delack_deadline = None;
                self.unacked_segs = 0;
                if self.recv.is_some() {
                    let ack = self.make_ack();
                    self.push_seg(&mut eff, ack);
                }
            }
        }
        if let Some(d) = self.rto_deadline {
            if now >= d {
                self.rto_timeout(now, &mut eff);
            }
        }
        if let Some(d) = self.persist_deadline {
            if now >= d {
                self.persist_fire(now, &mut eff);
            }
        }
        eff
    }

    fn rto_timeout(&mut self, now: SimTime, eff: &mut Effects) {
        self.rto_deadline = None;
        if self.flight_size() == 0 && !matches!(self.state, TcpState::SynSent | TcpState::SynRcvd) {
            return;
        }
        if matches!(self.state, TcpState::SynSent | TcpState::SynRcvd) {
            self.syn_retries += 1;
            if self.syn_retries > MAX_SYN_RETRIES {
                self.enter_closed(eff, ConnEvent::Reset);
                return;
            }
        } else if self.snd_wnd == 0 {
            // Zero-window freeze: a closed window is receiver flow control,
            // not congestion (the behaviour BSSP's ZWSM exploits, §8.2.2).
            // Recovery is handed to the persist timer; cwnd and the RTO
            // estimate stay intact, so transmission restarts at full speed
            // when the window reopens.
            self.stats.zero_window_freezes += 1;
            if self.persist_deadline.is_none() {
                self.arm_persist(now);
            }
            return;
        }
        self.stats.timeouts += 1;
        let flight = self.flight_size().max(self.cfg.mss as u32);
        self.ssthresh = (flight / 2).max(2 * self.cfg.mss as u32);
        self.cwnd = self.cfg.mss as u32;
        self.in_fast_recovery = false;
        self.dup_acks = 0;
        self.rto.backoff();
        // Go-back-N pullback (BSD tcp_timers, REXMT case): the whole flight
        // is presumed lost, so pull snd_nxt back to the cumulative edge and
        // let the normal send path stream the lost range out again under
        // slow start. Without the pullback the lost tail keeps counting
        // toward flight_size(), the one-MSS window never opens past it, and
        // recovery crawls at one segment per backed-off RTO.
        if !matches!(self.state, TcpState::SynSent | TcpState::SynRcvd) {
            self.snd_nxt = self.snd_una;
        }
        self.retransmit_head(now, eff);
    }

    fn persist_fire(&mut self, now: SimTime, eff: &mut Effects) {
        self.persist_deadline = None;
        if self.snd_wnd > 0 || self.pending_send_bytes() == 0 {
            return;
        }
        // Probe with the byte at the window edge. When a previous probe (or
        // a flight frozen by the zero window) is still unacknowledged, this
        // re-sends the first unacked byte rather than consuming fresh
        // sequence space: a conforming receiver discards bytes beyond its
        // advertised window, so each new byte would creep the sender
        // further past the credit without ever being deliverable (BSD
        // resets snd_nxt to snd_una on a closed window for this reason).
        self.stats.persist_probes += 1;
        let probe_seq = if seq_lt(self.snd_una, self.snd_max) {
            self.snd_una
        } else {
            self.data_nxt()
        };
        let payload = self.send_buf.slice(probe_seq, 1);
        if payload.is_empty() {
            return;
        }
        let seg = self.make_seg(probe_seq, TcpFlags::ACK, payload);
        // A fresh probe byte enters the stream: account for it so its ACK
        // is accepted (BSD keeps snd_nxt >= snd_una the same way).
        if probe_seq == self.snd_nxt {
            self.snd_nxt = self.snd_nxt.wrapping_add(1);
            self.snd_max = seq_max(self.snd_max, self.snd_nxt);
        }
        self.push_seg(eff, seg);
        self.persist_shift = (self.persist_shift + 1).min(10);
        self.arm_persist(now);
    }

    fn arm_persist(&mut self, now: SimTime) {
        let interval = self
            .cfg
            .persist_initial
            .saturating_mul(1 << self.persist_shift)
            .min(self.cfg.persist_max);
        self.persist_deadline = Some(now + interval);
    }

    fn arm_rto(&mut self, now: SimTime) {
        self.rto_deadline = Some(now + self.rto.rto());
    }

    fn arm_rto_if_unarmed(&mut self, now: SimTime) {
        if self.rto_deadline.is_none() {
            self.arm_rto(now);
        }
    }

    // ------------------------------------------------------------------
    // Helpers.
    // ------------------------------------------------------------------

    fn enter_time_wait(&mut self, now: SimTime) {
        self.state = TcpState::TimeWait;
        self.time_wait_deadline = Some(now + self.cfg.time_wait);
        self.rto_deadline = None;
        self.persist_deadline = None;
        self.delack_deadline = None;
    }

    fn enter_closed(&mut self, eff: &mut Effects, event: ConnEvent) {
        self.state = TcpState::Closed;
        self.rto_deadline = None;
        self.persist_deadline = None;
        self.delack_deadline = None;
        self.time_wait_deadline = None;
        eff.events.push(event);
    }

    fn make_ack(&self) -> TcpSegment {
        self.make_seg(self.snd_nxt, TcpFlags::ACK, Bytes::new())
    }

    fn make_seg(&self, seq: u32, flags: TcpFlags, payload: Bytes) -> TcpSegment {
        let (ack, window) = match &self.recv {
            Some(recv) => (recv.rcv_nxt(), recv.window() as u16),
            None => (0, self.cfg.recv_buffer.min(65_535) as u16),
        };
        let flags = if self.recv.is_some() && !flags.contains(TcpFlags::SYN) {
            flags | TcpFlags::ACK
        } else {
            flags
        };
        // Ports are filled in by the host layer.
        let mut seg = TcpSegment::new(0, 0, seq, if flags.ack() { ack } else { 0 }, flags);
        seg.window = window;
        seg.payload = payload;
        seg
    }

    fn push_seg(&mut self, eff: &mut Effects, seg: TcpSegment) {
        self.stats.segs_out += 1;
        eff.segments.push(seg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (TcpConnection, TcpConnection) {
        let cfg = TcpConfig::default().with_delayed_ack(false);
        let mut a = TcpConnection::new(cfg.clone(), 1000);
        let mut b = TcpConnection::new(cfg, 5000);
        b.listen();
        let _ = &mut a;
        (a, b)
    }

    /// Runs segments between two connections until quiescent; returns all
    /// events observed as (endpoint, event).
    fn pump(
        a: &mut TcpConnection,
        b: &mut TcpConnection,
        now: SimTime,
        initial: Effects,
        from_a: bool,
    ) -> Vec<(char, ConnEvent)> {
        let mut events = Vec::new();
        let mut queue: std::collections::VecDeque<(bool, TcpSegment)> =
            initial.segments.into_iter().map(|s| (from_a, s)).collect();
        for e in initial.events {
            events.push((if from_a { 'a' } else { 'b' }, e));
        }
        let mut guard = 0;
        while let Some((is_from_a, seg)) = queue.pop_front() {
            guard += 1;
            assert!(guard < 10_000, "segment storm");
            let (target, tag) = if is_from_a {
                (&mut *b, 'b')
            } else {
                (&mut *a, 'a')
            };
            let eff = target.on_segment(now, &seg);
            for e in eff.events {
                events.push((tag, e));
            }
            for s in eff.segments {
                queue.push_back((!is_from_a, s));
            }
        }
        events
    }

    #[test]
    fn three_way_handshake() {
        let (mut a, mut b) = pair();
        let now = SimTime::ZERO;
        let eff = a.connect(now);
        assert_eq!(eff.segments.len(), 1);
        assert!(eff.segments[0].flags.syn());
        let events = pump(&mut a, &mut b, now, eff, true);
        assert!(events.contains(&('a', ConnEvent::Connected)));
        assert!(events.contains(&('b', ConnEvent::Connected)));
        assert_eq!(a.state(), TcpState::Established);
        assert_eq!(b.state(), TcpState::Established);
    }

    #[test]
    fn data_transfer_and_read() {
        let (mut a, mut b) = pair();
        let now = SimTime::ZERO;
        let eff = a.connect(now);
        pump(&mut a, &mut b, now, eff, true);
        let eff = a.write(now, b"hello wireless world");
        let events = pump(&mut a, &mut b, now, eff, true);
        assert!(events.contains(&('b', ConnEvent::DataReadable)));
        let (data, _) = b.take_data(now);
        assert_eq!(&data[..], b"hello wireless world");
        assert_eq!(b.stats.bytes_delivered, 20);
        assert_eq!(a.stats.bytes_sent, 20);
    }

    #[test]
    fn large_transfer_respects_mss() {
        let (mut a, mut b) = pair();
        let now = SimTime::ZERO;
        let eff = a.connect(now);
        pump(&mut a, &mut b, now, eff, true);
        let payload = vec![7u8; 40_000];
        let mut eff = a.write(now, &payload);
        // cwnd starts at 1 MSS: only one segment goes out initially.
        assert_eq!(eff.segments.len(), 1);
        assert_eq!(eff.segments[0].payload.len(), 1460);
        // Pump to completion; ACKs grow cwnd and release more data.
        let mut received = Vec::new();
        for _round in 0..400 {
            let events = pump(&mut a, &mut b, now, std::mem::take(&mut eff), true);
            if events
                .iter()
                .any(|(t, e)| *t == 'b' && *e == ConnEvent::DataReadable)
            {
                let (data, weff) = b.take_data(now);
                received.extend_from_slice(&data);
                // Window updates (if any) come from b; feeding them to a may
                // release more segments, all of which originate at a.
                for seg in weff.segments {
                    let more = a.on_segment(now, &seg);
                    eff.merge(more);
                }
            }
            if received.len() == payload.len() {
                break;
            }
            let mut e2 = Effects::default();
            a.try_send(now, &mut e2);
            eff.merge(e2);
        }
        assert_eq!(received.len(), payload.len());
        assert!(a.cwnd() > a.cfg.initial_cwnd());
    }

    #[test]
    fn graceful_close_both_sides() {
        let (mut a, mut b) = pair();
        let now = SimTime::ZERO;
        let eff = a.connect(now);
        pump(&mut a, &mut b, now, eff, true);
        let eff = a.close(now);
        let events = pump(&mut a, &mut b, now, eff, true);
        assert!(events.contains(&('b', ConnEvent::PeerClosed)));
        assert_eq!(a.state(), TcpState::FinWait2);
        assert_eq!(b.state(), TcpState::CloseWait);
        let eff = b.close(now);
        let events = pump(&mut a, &mut b, now, eff, false);
        assert!(events.contains(&('b', ConnEvent::Closed)));
        assert_eq!(a.state(), TcpState::TimeWait);
        assert_eq!(b.state(), TcpState::Closed);
        // TIME-WAIT expires.
        let eff = a.on_timer(now + SimDuration::from_secs(10));
        assert!(eff.events.contains(&ConnEvent::Closed));
        assert!(a.is_closed());
    }

    #[test]
    fn retransmission_timeout_and_backoff() {
        let (mut a, mut b) = pair();
        let now = SimTime::ZERO;
        let eff = a.connect(now);
        pump(&mut a, &mut b, now, eff, true);
        let eff = a.write(now, &[1u8; 1460]);
        assert_eq!(eff.segments.len(), 1);
        // Drop the segment; fire the RTO.
        let deadline = a.next_deadline().expect("rto armed");
        let eff = a.on_timer(deadline);
        assert_eq!(a.stats.timeouts, 1);
        assert_eq!(eff.segments.len(), 1, "retransmission");
        assert_eq!(eff.segments[0].payload.len(), 1460);
        assert_eq!(a.cwnd(), 1460, "cwnd collapsed");
        // Second timeout doubles the RTO.
        let d2 = a.next_deadline().expect("rearmed");
        let eff2 = a.on_timer(d2);
        assert_eq!(a.stats.timeouts, 2);
        assert!(!eff2.segments.is_empty());
        let d3 = a.next_deadline().unwrap();
        assert!(d3 - d2 > d2 - deadline, "exponential backoff");
        let _ = b;
    }

    #[test]
    fn fast_retransmit_on_triple_dupack() {
        let cfg = TcpConfig::default().with_delayed_ack(false);
        let mut a = TcpConnection::new(cfg.clone(), 0);
        let mut b = TcpConnection::new(cfg, 0);
        b.listen();
        let now = SimTime::ZERO;
        let eff = a.connect(now);
        pump(&mut a, &mut b, now, eff, true);
        // Open the cwnd artificially by acking a warmup transfer.
        let warm = a.write(now, &vec![0u8; 1460 * 4]);
        pump(&mut a, &mut b, now, warm, true);
        b.take_data(now);
        assert!(a.cwnd() >= 4 * 1460, "cwnd={}", a.cwnd());

        // Send 5 segments; drop the first, deliver the rest.
        let eff = a.write(now, &vec![1u8; 1460 * 5]);
        let segs = eff.segments;
        assert!(
            segs.len() >= 4,
            "need at least 4 segments, got {}",
            segs.len()
        );
        let mut dup_acks = Vec::new();
        for seg in &segs[1..] {
            let eff = b.on_segment(now, seg);
            dup_acks.extend(eff.segments);
        }
        assert!(
            dup_acks.len() >= 3,
            "out-of-order segments produce immediate ACKs"
        );
        let mut retx = Vec::new();
        for ack in &dup_acks {
            let eff = a.on_segment(now, ack);
            retx.extend(eff.segments);
        }
        assert_eq!(a.stats.fast_retransmits, 1);
        assert!(
            retx.iter().any(|s| s.seq == segs[0].seq),
            "head retransmitted"
        );
        // Deliver the retransmission: receiver's ACK jumps past the hole.
        let eff = b.on_segment(now, retx.iter().find(|s| s.seq == segs[0].seq).unwrap());
        let cumulative = eff.segments.last().expect("ack");
        assert!(seq_ge(cumulative.ack, segs.last().unwrap().seq));
    }

    #[test]
    fn zero_window_triggers_persist_probes() {
        let cfg = TcpConfig::default()
            .with_delayed_ack(false)
            .with_recv_buffer(2920);
        let mut a = TcpConnection::new(cfg.clone(), 0);
        let mut b = TcpConnection::new(cfg, 0);
        b.listen();
        let now = SimTime::ZERO;
        let eff = a.connect(now);
        pump(&mut a, &mut b, now, eff, true);
        // Fill the receiver's 2920-byte buffer; the app never reads.
        let eff = a.write(now, &vec![3u8; 10_000]);
        pump(&mut a, &mut b, now, eff, true);
        let mut eff = Effects::default();
        a.try_send(now, &mut eff);
        pump(&mut a, &mut b, now, eff, true);
        assert_eq!(a.snd_wnd(), 0, "receiver advertised zero window");
        assert!(a.pending_send_bytes() > 0);
        // Persist timer must be armed; firing it sends a 1-byte probe.
        let d = a.next_deadline().expect("persist armed");
        let eff = a.on_timer(d);
        assert_eq!(a.stats.persist_probes, 1);
        assert_eq!(eff.segments.len(), 1);
        assert_eq!(eff.segments[0].payload.len(), 1);
        // Receiver still full: probe elicits a zero-window ACK.
        let reply = b.on_segment(d, &eff.segments[0]);
        assert!(!reply.segments.is_empty());
        assert_eq!(reply.segments[0].window, 0);
        // App reads; window-update ACK reopens the stream.
        let (_data, weff) = b.take_data(d);
        assert!(!weff.segments.is_empty(), "window update sent");
        let eff = a.on_segment(d, &weff.segments[0]);
        assert!(a.snd_wnd() > 0);
        assert!(!eff.segments.is_empty(), "transmission resumed");
    }

    #[test]
    fn reset_tears_down() {
        let (mut a, mut b) = pair();
        let now = SimTime::ZERO;
        let eff = a.connect(now);
        pump(&mut a, &mut b, now, eff, true);
        let eff = a.abort();
        let events = pump(&mut a, &mut b, now, eff, true);
        assert!(events.contains(&('b', ConnEvent::Reset)));
        assert!(a.is_closed() && b.is_closed());
    }

    #[test]
    fn syn_gives_up_after_retries() {
        let cfg = TcpConfig::default();
        let mut a = TcpConnection::new(cfg, 0);
        let mut now = SimTime::ZERO;
        let _ = a.connect(now);
        let mut gave_up = false;
        for _ in 0..=MAX_SYN_RETRIES + 1 {
            let Some(d) = a.next_deadline() else { break };
            now = d;
            let eff = a.on_timer(now);
            if eff.events.contains(&ConnEvent::Reset) {
                gave_up = true;
                break;
            }
        }
        assert!(gave_up);
        assert!(a.is_closed());
    }

    #[test]
    fn tahoe_collapses_cwnd_on_dupacks() {
        let cfg = TcpConfig::default()
            .with_delayed_ack(false)
            .with_recovery(Recovery::Tahoe);
        let mut a = TcpConnection::new(cfg.clone(), 0);
        let mut b = TcpConnection::new(cfg, 0);
        b.listen();
        let now = SimTime::ZERO;
        let eff = a.connect(now);
        pump(&mut a, &mut b, now, eff, true);
        let warm = a.write(now, &vec![0u8; 1460 * 4]);
        pump(&mut a, &mut b, now, warm, true);
        b.take_data(now);
        let eff = a.write(now, &vec![1u8; 1460 * 5]);
        let segs = eff.segments;
        let mut dup_acks = Vec::new();
        for seg in &segs[1..] {
            dup_acks.extend(b.on_segment(now, seg).segments);
        }
        for ack in &dup_acks {
            a.on_segment(now, ack);
        }
        assert_eq!(a.cwnd(), 1460, "Tahoe slow-starts after fast retransmit");
    }

    #[test]
    fn backoff_survives_ack_of_retransmission() {
        // RFC 6298 §5.7 regression: the ACK of a retransmitted segment is
        // ambiguous under Karn's rule, so it must NOT collapse the
        // exponential backoff — only a fresh RTT sample may. The bug this
        // pins: clear_backoff() on every new-data ACK let one ambiguous ACK
        // reset a backed-off timer on a path that was still losing.
        let (mut a, mut b) = pair();
        let now = SimTime::ZERO;
        let eff = a.connect(now);
        pump(&mut a, &mut b, now, eff, true);
        let _lost = a.write(now, &[1u8; 1460]); // never delivered
        let d1 = a.next_deadline().expect("rto armed");
        let _also_lost = a.on_timer(d1);
        let d2 = a.next_deadline().expect("rto rearmed");
        let eff = a.on_timer(d2);
        assert_eq!(a.rto.backoff_shift(), 2, "two timeouts, two doublings");
        // The second retransmission gets through; its ACK reaches a.
        let reply = b.on_segment(d2, &eff.segments[0]);
        let ack = reply.segments.last().expect("ack");
        a.on_segment(d2, ack);
        assert_eq!(
            a.rto.backoff_shift(),
            2,
            "ambiguous ACK of a retransmission must not clear the backoff"
        );
        // New (never-retransmitted) data yields a measurable RTT sample,
        // which is what legitimately ends the backoff sequence.
        let eff = a.write(d2, &[2u8; 100]);
        let reply = b.on_segment(d2, &eff.segments[0]);
        a.on_segment(d2, reply.segments.last().expect("ack"));
        assert_eq!(a.rto.backoff_shift(), 0, "fresh sample ends the backoff");
    }

    #[test]
    fn reno_full_ack_deflates_cwnd_to_ssthresh() {
        // Pins the RFC 6582 fast-recovery exit: when the ACK finally covers
        // `recover`, the inflated window must deflate to exactly ssthresh —
        // keeping the inflation would burst into a path that just lost.
        let cfg = TcpConfig::default().with_delayed_ack(false);
        let mut a = TcpConnection::new(cfg.clone(), 0);
        let mut b = TcpConnection::new(cfg, 0);
        b.listen();
        let now = SimTime::ZERO;
        let eff = a.connect(now);
        pump(&mut a, &mut b, now, eff, true);
        let warm = a.write(now, &vec![0u8; 1460 * 4]);
        pump(&mut a, &mut b, now, warm, true);
        b.take_data(now);
        // Drop the head of a 5-segment flight; dupacks trigger recovery.
        let segs = a.write(now, &vec![1u8; 1460 * 5]).segments;
        let mut dup_acks = Vec::new();
        for seg in &segs[1..] {
            dup_acks.extend(b.on_segment(now, seg).segments);
        }
        let mut retx = Vec::new();
        for ack in &dup_acks {
            retx.extend(a.on_segment(now, ack).segments);
        }
        assert!(a.in_fast_recovery, "triple dupack entered recovery");
        assert!(a.cwnd() > a.ssthresh(), "window inflated during recovery");
        // Deliver the retransmitted head: the receiver's cumulative ACK
        // covers the whole flight (a full ACK past `recover`).
        let head = retx.iter().find(|s| s.seq == segs[0].seq).expect("retx");
        let full = b.on_segment(now, head);
        let cumulative = full.segments.last().expect("cumulative ack");
        a.on_segment(now, cumulative);
        assert!(!a.in_fast_recovery, "full ACK exits recovery");
        assert_eq!(a.cwnd(), a.ssthresh(), "window deflates to ssthresh");
    }

    /// Drives a pair into a zero-window standoff: `a` has filled `b`'s
    /// 2920-byte receive buffer and still has unsent data queued.
    fn zero_window_pair() -> (TcpConnection, TcpConnection) {
        let cfg = TcpConfig::default()
            .with_delayed_ack(false)
            .with_recv_buffer(2920);
        let mut a = TcpConnection::new(cfg.clone(), 0);
        let mut b = TcpConnection::new(cfg, 0);
        b.listen();
        let now = SimTime::ZERO;
        let eff = a.connect(now);
        pump(&mut a, &mut b, now, eff, true);
        let eff = a.write(now, &vec![3u8; 10_000]);
        pump(&mut a, &mut b, now, eff, true);
        let mut eff = Effects::default();
        a.try_send(now, &mut eff);
        pump(&mut a, &mut b, now, eff, true);
        assert_eq!(a.snd_wnd(), 0);
        assert!(a.pending_send_bytes() > 0);
        (a, b)
    }

    /// Fires the sender's persist timer once with the probe lost in
    /// transit (the case where backoff matters: no reply means no reset);
    /// returns the fire time.
    fn fire_persist_probe_lost(a: &mut TcpConnection) -> SimTime {
        let d = a.persist_deadline.expect("persist armed");
        let eff = a.on_timer(d);
        assert!(!eff.segments.is_empty(), "probe emitted");
        d
    }

    #[test]
    fn persist_probe_interval_clamps_at_persist_max() {
        // Pins the persist backoff clamp: with probes lost in transit the
        // intervals double from persist_initial but never exceed
        // persist_max (RFC 9293 §3.8.6.1 leaves the cap to the
        // implementation; ours is configured).
        let (mut a, _b) = zero_window_pair();
        let mut fires = Vec::new();
        for _ in 0..12 {
            fires.push(fire_persist_probe_lost(&mut a));
        }
        assert_eq!(a.stats.persist_probes, 12);
        let gaps: Vec<SimDuration> = fires.windows(2).map(|w| w[1] - w[0]).collect();
        for w in gaps.windows(2) {
            assert!(w[1] >= w[0], "persist intervals never shrink mid-standoff");
        }
        for gap in &gaps {
            assert!(*gap <= a.cfg.persist_max, "interval exceeds persist_max");
        }
        assert_eq!(
            *gaps.last().unwrap(),
            a.cfg.persist_max,
            "backoff saturates at persist_max"
        );
    }

    #[test]
    fn persist_backoff_resets_when_window_reopens() {
        // Pins the persist reset: once the peer reopens its window, the
        // next zero-window episode must start probing at persist_initial
        // again, not at the previous episode's backed-off interval.
        let (mut a, mut b) = zero_window_pair();
        for _ in 0..4 {
            fire_persist_probe_lost(&mut a);
        }
        assert!(a.persist_shift >= 4, "backoff built up during standoff");
        // The receiving app drains its buffer; the window-update ACK
        // reopens the stream.
        let now = a.persist_deadline.expect("persist armed");
        let (_data, weff) = b.take_data(now);
        for seg in &weff.segments {
            a.on_segment(now, seg);
        }
        assert!(a.snd_wnd() > 0, "window reopened");
        assert_eq!(a.persist_shift, 0, "backoff cleared on reopen");
        assert_eq!(a.persist_deadline, None, "persist timer disarmed");
    }

    #[test]
    fn accepted_probe_byte_restarts_persist_backoff() {
        // When the receiver accepts and ACKs the probe byte (our elastic
        // receive buffer takes in-order data even at a zero advertised
        // window), the sender made forward progress, so restarting the
        // backoff from persist_initial is the correct behaviour — pin it.
        let (mut a, mut b) = zero_window_pair();
        let d = a.persist_deadline.expect("persist armed");
        let eff = a.on_timer(d);
        assert!(a.persist_shift > 0);
        for seg in eff.segments {
            for reply in b.on_segment(d, &seg).segments {
                a.on_segment(d, &reply);
            }
        }
        assert_eq!(a.persist_shift, 0, "acked probe byte is forward progress");
        assert!(a.persist_deadline.is_some(), "still zero-window: keep probing");
    }

    #[test]
    fn lost_persist_probes_reprobe_the_window_edge() {
        // Regression (found by the conformance oracle): every persist fire
        // used to send the NEXT unsent byte, so a standoff with lost
        // probes crept the sender one byte further past the advertised
        // window per probe — bytes a conforming receiver must discard. A
        // lost probe must be followed by a re-probe of the same
        // window-edge byte.
        let (mut a, _b) = zero_window_pair();
        let edge = a.snd_una;
        let mut probes = Vec::new();
        for _ in 0..6 {
            let d = a.persist_deadline.expect("persist armed");
            for seg in a.on_timer(d).segments {
                if !seg.payload.is_empty() {
                    probes.push((seg.seq, seg.payload.len()));
                }
            }
        }
        assert_eq!(probes.len(), 6);
        for (seq, len) in &probes {
            assert_eq!(*seq, edge, "probe re-sends the window-edge byte");
            assert_eq!(*len, 1);
        }
        assert_eq!(a.flight_size(), 1, "never more than one byte past the window");
    }

    #[test]
    fn timeout_pullback_streams_lost_flight_without_more_timeouts() {
        // Regression (surfaced by the disconnection workloads once the
        // RFC 6298 backoff fix landed): an RTO used to retransmit only
        // the head segment while snd_nxt stayed at the end of the lost
        // flight, so flight_size() never dropped below the one-MSS window
        // and recovery crawled at one segment per backed-off RTO. The
        // go-back-N pullback lets ACK-clocked slow start stream the whole
        // lost range after a single timeout.
        let (mut a, mut b) = pair();
        let now = SimTime::ZERO;
        let eff = a.connect(now);
        pump(&mut a, &mut b, now, eff, true);
        // Warm-up transfer grows cwnd past one segment.
        let warm = a.write(now, &vec![0u8; 1460 * 4]);
        pump(&mut a, &mut b, now, warm, true);
        b.take_data(now);
        // A multi-segment flight, lost in its entirety.
        let segs = a.write(now, &vec![7u8; 1460 * 5]).segments;
        assert!(segs.len() >= 2, "flight has {} segments", segs.len());
        let d = a.rto_deadline.expect("rto armed");
        let eff = a.on_timer(d);
        assert_eq!(a.stats.timeouts, 1);
        assert_eq!(eff.segments.len(), 1, "the timeout itself resends the head");
        assert_eq!(eff.segments[0].seq, a.snd_una);
        // From here the recovery must be ACK-clocked: no further timer
        // fires, the whole flight arrives.
        pump(&mut a, &mut b, d, eff, true);
        let (data, _weff) = b.take_data(d);
        assert_eq!(data.len(), 1460 * 5, "full flight recovered via slow start");
        assert_eq!(a.stats.timeouts, 1, "no additional timeouts needed");
        assert_eq!(a.flight_size(), 0);
    }

    #[test]
    fn delayed_ack_batches() {
        let cfg = TcpConfig::default(); // Delayed ACK on.
        let mut a = TcpConnection::new(cfg.clone(), 0);
        let mut b = TcpConnection::new(cfg, 0);
        b.listen();
        let now = SimTime::ZERO;
        let eff = a.connect(now);
        pump(&mut a, &mut b, now, eff, true);
        // One in-order segment: no immediate ACK, delack timer armed.
        let seg1 = a.write(now, &[1u8; 100]).segments.remove(0);
        let eff = b.on_segment(now, &seg1);
        assert!(eff.segments.is_empty(), "first segment's ACK delayed");
        let d = b.next_deadline().expect("delack armed");
        let eff = b.on_timer(d);
        assert_eq!(eff.segments.len(), 1, "delayed ACK fires");
        assert!(eff.segments[0].flags.ack());
    }
}
