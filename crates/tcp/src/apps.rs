//! The application layer: a callback-driven [`App`] trait plus the standard
//! workloads used throughout the evaluation (bulk transfer, sink, echo,
//! request/response).

use std::any::Any;

use comma_rt::Bytes;
use comma_netsim::addr::Ipv4Addr;
use comma_netsim::stats::Summary;
use comma_netsim::time::{SimDuration, SimTime};

use crate::config::TcpConfig;

/// Handle to a TCP socket on a host.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SocketId(pub usize);

/// Operations an application may request from its host.
#[derive(Debug)]
pub enum AppOp {
    /// Open a connection to `remote`; `on_connected` fires when established.
    Connect {
        /// Destination address and port.
        remote: (Ipv4Addr, u16),
        /// Optional per-connection TCP configuration.
        cfg: Option<TcpConfig>,
    },
    /// Listen for connections on a port.
    Listen {
        /// Local port.
        port: u16,
        /// Optional configuration applied to accepted connections.
        cfg: Option<TcpConfig>,
    },
    /// Send bytes on an open socket.
    Send {
        /// Socket to write to.
        sock: SocketId,
        /// Bytes to queue.
        data: Bytes,
    },
    /// Close the sending side of a socket.
    Close {
        /// Socket to close.
        sock: SocketId,
    },
    /// Bind a UDP port to this application.
    BindUdp {
        /// Local UDP port.
        port: u16,
    },
    /// Send a UDP datagram.
    SendUdp {
        /// Source port (should be bound by this app).
        src_port: u16,
        /// Destination address and port.
        dst: (Ipv4Addr, u16),
        /// Payload.
        payload: Bytes,
    },
    /// Request an application timer callback.
    Timer {
        /// Delay before `on_timer` fires.
        delay: SimDuration,
        /// Token passed back to `on_timer`.
        token: u64,
    },
}

/// Context handed to application callbacks.
pub struct AppCtx {
    /// Current simulated time.
    pub now: SimTime,
    ops: Vec<AppOp>,
}

impl AppCtx {
    /// Creates a context at `now`.
    pub fn new(now: SimTime) -> Self {
        AppCtx {
            now,
            ops: Vec::new(),
        }
    }

    /// Requests an operation.
    pub fn op(&mut self, op: AppOp) {
        self.ops.push(op);
    }

    /// Convenience: connect to `remote`.
    pub fn connect(&mut self, remote: (Ipv4Addr, u16)) {
        self.ops.push(AppOp::Connect { remote, cfg: None });
    }

    /// Convenience: listen on `port`.
    pub fn listen(&mut self, port: u16) {
        self.ops.push(AppOp::Listen { port, cfg: None });
    }

    /// Convenience: send `data` on `sock`.
    pub fn send(&mut self, sock: SocketId, data: impl Into<Bytes>) {
        self.ops.push(AppOp::Send {
            sock,
            data: data.into(),
        });
    }

    /// Convenience: close `sock`.
    pub fn close(&mut self, sock: SocketId) {
        self.ops.push(AppOp::Close { sock });
    }

    /// Convenience: arm an app timer.
    pub fn timer(&mut self, delay: SimDuration, token: u64) {
        self.ops.push(AppOp::Timer { delay, token });
    }

    /// Drains the requested operations (host use).
    pub fn take_ops(&mut self) -> Vec<AppOp> {
        std::mem::take(&mut self.ops)
    }
}

/// A host-resident application.
///
/// All callbacks receive an [`AppCtx`] through which the application issues
/// socket operations; they must not block.
pub trait App {
    /// Short name for diagnostics.
    fn name(&self) -> &str;

    /// Called once at simulation start.
    fn on_start(&mut self, _ctx: &mut AppCtx) {}

    /// An active open completed.
    fn on_connected(&mut self, _ctx: &mut AppCtx, _sock: SocketId) {}

    /// A passive open completed (a peer connected to our listener).
    fn on_accepted(&mut self, _ctx: &mut AppCtx, _sock: SocketId, _peer: (Ipv4Addr, u16)) {}

    /// In-order data arrived.
    fn on_data(&mut self, _ctx: &mut AppCtx, _sock: SocketId, _data: Bytes) {}

    /// The peer closed its sending side.
    fn on_peer_closed(&mut self, _ctx: &mut AppCtx, _sock: SocketId) {}

    /// The connection fully closed (or was reset).
    fn on_closed(&mut self, _ctx: &mut AppCtx, _sock: SocketId) {}

    /// An application timer fired.
    fn on_timer(&mut self, _ctx: &mut AppCtx, _token: u64) {}

    /// A UDP datagram arrived on a bound port.
    fn on_udp(
        &mut self,
        _ctx: &mut AppCtx,
        _from: (Ipv4Addr, u16),
        _dst_port: u16,
        _payload: Bytes,
    ) {
    }

    /// Typed access for tools and tests.
    fn as_any(&mut self) -> &mut dyn Any;

    /// Deep copy for world snapshots ([`comma_netsim::sim::Simulator::snapshot`]).
    /// Applications that do not opt in (the default) make their host — and
    /// therefore the world — unsnapshottable.
    fn clone_app(&self) -> Option<Box<dyn App>> {
        None
    }

    /// Folds *behavior-relevant* application state into a canonical world
    /// fingerprint. Pure counters and measurement fields should be left
    /// out; the default (empty) is sound only for stateless applications.
    fn state_digest(&self, _h: &mut comma_rt::digest::Fnv1a) {}
}

// ---------------------------------------------------------------------
// Standard workloads.
// ---------------------------------------------------------------------

/// Sends `total_bytes` to a remote sink as fast as TCP allows, then closes.
#[derive(Clone)]
pub struct BulkSender {
    remote: (Ipv4Addr, u16),
    total_bytes: usize,
    chunk: usize,
    sent: usize,
    sock: Option<SocketId>,
    /// Time the connection was established.
    pub started_at: Option<SimTime>,
    /// Time the connection fully closed.
    pub finished_at: Option<SimTime>,
    /// Byte value pattern generator (deterministic, compressible or not).
    pattern: fn(usize) -> u8,
    start_after: SimDuration,
    cfg: Option<TcpConfig>,
}

impl BulkSender {
    /// Creates a sender that transfers `total_bytes` of a mildly
    /// compressible pattern.
    pub fn new(remote: (Ipv4Addr, u16), total_bytes: usize) -> Self {
        BulkSender {
            remote,
            total_bytes,
            chunk: 16 * 1024,
            sent: 0,
            sock: None,
            started_at: None,
            finished_at: None,
            pattern: |i| (i % 251) as u8,
            start_after: SimDuration::ZERO,
            cfg: None,
        }
    }

    /// Delays the connection attempt.
    pub fn with_start_after(mut self, delay: SimDuration) -> Self {
        self.start_after = delay;
        self
    }

    /// Uses a custom byte pattern (e.g. highly compressible text).
    pub fn with_pattern(mut self, pattern: fn(usize) -> u8) -> Self {
        self.pattern = pattern;
        self
    }

    /// Uses a custom TCP configuration for the connection.
    pub fn with_config(mut self, cfg: TcpConfig) -> Self {
        self.cfg = Some(cfg);
        self
    }

    /// Returns the socket handle once connected.
    pub fn socket(&self) -> Option<SocketId> {
        self.sock
    }

    fn push_chunks(&mut self, ctx: &mut AppCtx) {
        let Some(sock) = self.sock else { return };
        while self.sent < self.total_bytes {
            let n = self.chunk.min(self.total_bytes - self.sent);
            let data: Vec<u8> = (self.sent..self.sent + n).map(self.pattern).collect();
            ctx.send(sock, data);
            self.sent += n;
        }
        ctx.close(sock);
    }
}

impl App for BulkSender {
    fn name(&self) -> &str {
        "bulk-sender"
    }

    fn on_start(&mut self, ctx: &mut AppCtx) {
        if self.start_after == SimDuration::ZERO {
            ctx.op(AppOp::Connect {
                remote: self.remote,
                cfg: self.cfg.clone(),
            });
        } else {
            ctx.timer(self.start_after, 0);
        }
    }

    fn on_timer(&mut self, ctx: &mut AppCtx, _token: u64) {
        if self.sock.is_none() {
            ctx.op(AppOp::Connect {
                remote: self.remote,
                cfg: self.cfg.clone(),
            });
        }
    }

    fn on_connected(&mut self, ctx: &mut AppCtx, sock: SocketId) {
        self.sock = Some(sock);
        self.started_at = Some(ctx.now);
        self.push_chunks(ctx);
    }

    fn on_closed(&mut self, ctx: &mut AppCtx, _sock: SocketId) {
        self.finished_at = Some(ctx.now);
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }

    fn clone_app(&self) -> Option<Box<dyn App>> {
        Some(Box::new(self.clone()))
    }

    fn state_digest(&self, h: &mut comma_rt::digest::Fnv1a) {
        h.update_u64(self.sent as u64);
        h.update_u64(self.sock.map_or(u64::MAX, |s| s.0 as u64));
    }
}

/// Accepts connections on a port and discards (but accounts) everything
/// received, closing when the peer closes.
#[derive(Clone)]
pub struct Sink {
    port: u16,
    /// Total payload bytes received, per completed plus live connections.
    pub bytes_received: usize,
    /// Time of the first payload byte.
    pub first_data_at: Option<SimTime>,
    /// Time of the most recent payload byte.
    pub last_data_at: Option<SimTime>,
    /// Number of connections accepted.
    pub accepted: usize,
    /// Number of connections fully closed.
    pub closed: usize,
    /// Received bytes kept for content verification (bounded).
    pub capture: Vec<u8>,
    /// Maximum bytes retained in `capture`.
    pub capture_limit: usize,
}

impl Sink {
    /// Creates a sink listening on `port`.
    pub fn new(port: u16) -> Self {
        Sink {
            port,
            bytes_received: 0,
            first_data_at: None,
            last_data_at: None,
            accepted: 0,
            closed: 0,
            capture: Vec::new(),
            capture_limit: 0,
        }
    }

    /// Retains up to `limit` received bytes for verification.
    pub fn with_capture(mut self, limit: usize) -> Self {
        self.capture_limit = limit;
        self
    }

    /// Elapsed time between the first and last payload byte.
    pub fn transfer_time(&self) -> Option<SimDuration> {
        Some(self.last_data_at?.saturating_since(self.first_data_at?))
    }
}

impl App for Sink {
    fn name(&self) -> &str {
        "sink"
    }

    fn on_start(&mut self, ctx: &mut AppCtx) {
        ctx.listen(self.port);
    }

    fn on_accepted(&mut self, _ctx: &mut AppCtx, _sock: SocketId, _peer: (Ipv4Addr, u16)) {
        self.accepted += 1;
    }

    fn on_data(&mut self, ctx: &mut AppCtx, _sock: SocketId, data: Bytes) {
        if self.first_data_at.is_none() {
            self.first_data_at = Some(ctx.now);
        }
        self.last_data_at = Some(ctx.now);
        self.bytes_received += data.len();
        if self.capture.len() < self.capture_limit {
            let room = self.capture_limit - self.capture.len();
            self.capture
                .extend_from_slice(&data[..data.len().min(room)]);
        }
    }

    fn on_peer_closed(&mut self, ctx: &mut AppCtx, sock: SocketId) {
        ctx.close(sock);
    }

    fn on_closed(&mut self, _ctx: &mut AppCtx, _sock: SocketId) {
        self.closed += 1;
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }

    fn clone_app(&self) -> Option<Box<dyn App>> {
        Some(Box::new(self.clone()))
    }
    // state_digest: the sink's future behavior does not depend on its
    // accounting fields, so the default (empty) digest is exact here.
}

/// Echoes every received byte back to the sender.
#[derive(Clone)]
pub struct EchoServer {
    port: u16,
    /// Bytes echoed.
    pub bytes_echoed: usize,
}

impl EchoServer {
    /// Creates an echo server on `port`.
    pub fn new(port: u16) -> Self {
        EchoServer {
            port,
            bytes_echoed: 0,
        }
    }
}

impl App for EchoServer {
    fn name(&self) -> &str {
        "echo"
    }

    fn on_start(&mut self, ctx: &mut AppCtx) {
        ctx.listen(self.port);
    }

    fn on_data(&mut self, ctx: &mut AppCtx, sock: SocketId, data: Bytes) {
        self.bytes_echoed += data.len();
        ctx.send(sock, data);
    }

    fn on_peer_closed(&mut self, ctx: &mut AppCtx, sock: SocketId) {
        ctx.close(sock);
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }

    fn clone_app(&self) -> Option<Box<dyn App>> {
        Some(Box::new(self.clone()))
    }
}

/// Issues fixed-size requests to an [`EchoServer`]-style responder and
/// records per-transaction latency; models interactive traffic.
#[derive(Clone)]
pub struct RequestResponse {
    remote: (Ipv4Addr, u16),
    request_size: usize,
    transactions: usize,
    completed: usize,
    pending_bytes: usize,
    sock: Option<SocketId>,
    sent_at: Option<SimTime>,
    think_time: SimDuration,
    /// Per-transaction latencies in milliseconds.
    pub latencies_ms: Summary,
    /// Set once all transactions completed and the connection closed.
    pub done: bool,
}

impl RequestResponse {
    /// Creates a client that runs `transactions` request/response rounds of
    /// `request_size` bytes each against `remote`.
    pub fn new(remote: (Ipv4Addr, u16), request_size: usize, transactions: usize) -> Self {
        RequestResponse {
            remote,
            request_size,
            transactions,
            completed: 0,
            pending_bytes: 0,
            sock: None,
            sent_at: None,
            think_time: SimDuration::ZERO,
            latencies_ms: Summary::new(),
            done: false,
        }
    }

    /// Adds a pause between transactions.
    pub fn with_think_time(mut self, think: SimDuration) -> Self {
        self.think_time = think;
        self
    }

    /// Transactions completed so far.
    pub fn completed(&self) -> usize {
        self.completed
    }

    fn fire(&mut self, ctx: &mut AppCtx) {
        let Some(sock) = self.sock else { return };
        self.pending_bytes = self.request_size;
        self.sent_at = Some(ctx.now);
        ctx.send(sock, vec![0x55u8; self.request_size]);
    }
}

impl App for RequestResponse {
    fn name(&self) -> &str {
        "request-response"
    }

    fn on_start(&mut self, ctx: &mut AppCtx) {
        ctx.connect(self.remote);
    }

    fn on_connected(&mut self, ctx: &mut AppCtx, sock: SocketId) {
        self.sock = Some(sock);
        self.fire(ctx);
    }

    fn on_data(&mut self, ctx: &mut AppCtx, sock: SocketId, data: Bytes) {
        self.pending_bytes = self.pending_bytes.saturating_sub(data.len());
        if self.pending_bytes == 0 && self.sent_at.is_some() {
            let rtt = ctx
                .now
                .saturating_since(self.sent_at.take().expect("sent_at"));
            self.latencies_ms.add(rtt.as_secs_f64() * 1e3);
            self.completed += 1;
            if self.completed >= self.transactions {
                ctx.close(sock);
            } else if self.think_time == SimDuration::ZERO {
                self.fire(ctx);
            } else {
                ctx.timer(self.think_time, 1);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut AppCtx, _token: u64) {
        self.fire(ctx);
    }

    fn on_closed(&mut self, _ctx: &mut AppCtx, _sock: SocketId) {
        self.done = true;
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }

    fn clone_app(&self) -> Option<Box<dyn App>> {
        Some(Box::new(self.clone()))
    }

    fn state_digest(&self, h: &mut comma_rt::digest::Fnv1a) {
        h.update_u64(self.completed as u64);
        h.update_u64(self.pending_bytes as u64);
        h.update_u64(self.sock.map_or(u64::MAX, |s| s.0 as u64));
        h.update_u64(self.sent_at.map_or(u64::MAX, |t| t.as_micros()));
        h.update_u64(self.done as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_ctx_collects_ops() {
        let mut ctx = AppCtx::new(SimTime::from_secs(1));
        ctx.connect((Ipv4Addr::new(1, 2, 3, 4), 80));
        ctx.listen(80);
        ctx.timer(SimDuration::from_millis(5), 7);
        let ops = ctx.take_ops();
        assert_eq!(ops.len(), 3);
        assert!(matches!(ops[0], AppOp::Connect { .. }));
        assert!(matches!(ops[2], AppOp::Timer { token: 7, .. }));
        assert!(ctx.take_ops().is_empty());
    }

    #[test]
    fn bulk_sender_pushes_and_closes() {
        let mut app = BulkSender::new((Ipv4Addr::new(1, 2, 3, 4), 9000), 40_000);
        let mut ctx = AppCtx::new(SimTime::ZERO);
        app.on_start(&mut ctx);
        assert!(matches!(ctx.take_ops()[0], AppOp::Connect { .. }));
        app.on_connected(&mut ctx, SocketId(0));
        let ops = ctx.take_ops();
        // 40 KB in 16 KB chunks = 3 sends + 1 close.
        assert_eq!(ops.len(), 4);
        assert!(matches!(ops[3], AppOp::Close { .. }));
        let total: usize = ops
            .iter()
            .filter_map(|op| match op {
                AppOp::Send { data, .. } => Some(data.len()),
                _ => None,
            })
            .sum();
        assert_eq!(total, 40_000);
    }

    #[test]
    fn sink_accounts_bytes_and_closes_back() {
        let mut sink = Sink::new(9000).with_capture(8);
        let mut ctx = AppCtx::new(SimTime::from_millis(3));
        sink.on_accepted(&mut ctx, SocketId(1), (Ipv4Addr::new(9, 9, 9, 9), 1234));
        sink.on_data(&mut ctx, SocketId(1), Bytes::from_static(b"hello world"));
        assert_eq!(sink.bytes_received, 11);
        assert_eq!(&sink.capture[..], b"hello wo");
        sink.on_peer_closed(&mut ctx, SocketId(1));
        assert!(matches!(ctx.take_ops()[0], AppOp::Close { .. }));
        assert_eq!(sink.transfer_time(), Some(SimDuration::ZERO));
    }

    #[test]
    fn request_response_measures_latency() {
        let mut rr = RequestResponse::new((Ipv4Addr::new(1, 1, 1, 1), 7), 100, 2);
        let mut ctx = AppCtx::new(SimTime::ZERO);
        rr.on_connected(&mut ctx, SocketId(0));
        assert!(matches!(ctx.take_ops()[0], AppOp::Send { .. }));
        let mut ctx = AppCtx::new(SimTime::from_millis(40));
        rr.on_data(&mut ctx, SocketId(0), Bytes::from(vec![0u8; 100]));
        assert_eq!(rr.completed(), 1);
        assert!((rr.latencies_ms.mean() - 40.0).abs() < 1e-9);
        // Second transaction fires immediately.
        assert!(matches!(ctx.take_ops()[0], AppOp::Send { .. }));
        let mut ctx = AppCtx::new(SimTime::from_millis(90));
        rr.on_data(&mut ctx, SocketId(0), Bytes::from(vec![0u8; 100]));
        assert!(matches!(ctx.take_ops()[0], AppOp::Close { .. }));
        rr.on_closed(&mut ctx, SocketId(0));
        assert!(rr.done);
    }
}
