//! The host node: socket table, TCP/UDP/ICMP demultiplexing, and the
//! application runtime.

use std::any::Any;
use std::collections::{HashMap, VecDeque};

use comma_obs::fields;
use comma_rt::Bytes;
use comma_netsim::addr::Ipv4Addr;
use comma_netsim::node::{IfaceId, Node, NodeCtx};
use comma_netsim::packet::{IcmpMessage, IpPayload, Packet, TcpFlags, TcpSegment, UdpDatagram};
use comma_netsim::routing::RoutingTable;
use comma_netsim::sched::TimerHandle;
use comma_netsim::time::SimTime;
use comma_rt::Rng;

use crate::apps::{App, AppCtx, AppOp, SocketId};
use crate::config::TcpConfig;
use crate::conn::{ConnEvent, ConnStats, Effects, TcpConnection, TcpState};

/// Timer-token bit marking application timers (vs. socket timers).
pub const APP_TIMER_BIT: u64 = 1 << 63;
/// Timer-token bit reserved for node wrappers (e.g. Mobile IP hosts); the
/// host ignores such tokens so wrappers can own them.
pub const WRAPPER_TIMER_BIT: u64 = 1 << 62;

/// Identifier of an application installed on a host.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AppId(pub usize);

/// SNMP-style host counters sampled by the EEM.
#[derive(Clone, Copy, Debug, Default)]
pub struct HostCounters {
    /// IP datagrams received (including misaddressed ones).
    pub ip_in_receives: u64,
    /// IP datagrams delivered to local protocols.
    pub ip_in_delivers: u64,
    /// IP datagrams this host originated.
    pub ip_out_requests: u64,
    /// IP datagrams discarded for lack of a local consumer.
    pub ip_in_discards: u64,
    /// TCP segments received.
    pub tcp_in_segs: u64,
    /// TCP segments sent.
    pub tcp_out_segs: u64,
    /// Active opens initiated.
    pub tcp_active_opens: u64,
    /// Passive opens completed.
    pub tcp_passive_opens: u64,
    /// RSTs sent for unmatched segments.
    pub tcp_estab_resets: u64,
    /// UDP datagrams received for a bound port.
    pub udp_in_datagrams: u64,
    /// UDP datagrams received for an unbound port.
    pub udp_no_ports: u64,
    /// UDP datagrams sent.
    pub udp_out_datagrams: u64,
    /// ICMP messages received.
    pub icmp_in_msgs: u64,
    /// ICMP messages sent.
    pub icmp_out_msgs: u64,
}

/// Snapshot of one socket for monitoring tools (Kati, the EEM).
#[derive(Clone, Debug)]
pub struct SocketInfo {
    /// Socket handle.
    pub sock: SocketId,
    /// Local address/port.
    pub local: (Ipv4Addr, u16),
    /// Remote address/port.
    pub remote: (Ipv4Addr, u16),
    /// Connection state.
    pub state: TcpState,
    /// Per-connection counters.
    pub stats: ConnStats,
    /// Owning application.
    pub app: AppId,
}

#[derive(Clone)]
struct SocketEntry {
    conn: TcpConnection,
    local: (Ipv4Addr, u16),
    remote: (Ipv4Addr, u16),
    app: usize,
    passive: bool,
    /// Cached observability scope (`<host>.conn.<l>:<lp>-<r>:<rp>`), built
    /// lazily on the first publish so the disabled path never allocates.
    obs_scope: Option<String>,
    /// Last state published to the flight recorder.
    last_state: TcpState,
    /// The armed connection timer: `(deadline, handle)`. Re-arming for a
    /// different deadline cancels the pending event; re-arming for the
    /// same deadline is a no-op, so RTO restarts and delayed-ACK
    /// rescheduling stop flooding the scheduler with stale timers.
    timer: Option<(SimTime, TimerHandle)>,
}

#[derive(Clone)]
struct Listener {
    port: u16,
    app: usize,
    cfg: Option<TcpConfig>,
}

enum AppEventKind {
    Started,
    Connected(SocketId),
    Accepted(SocketId, (Ipv4Addr, u16)),
    Data(SocketId, Bytes),
    PeerClosed(SocketId),
    Closed(SocketId),
    Timer(u64),
    Udp {
        from: (Ipv4Addr, u16),
        dst_port: u16,
        payload: Bytes,
    },
}

enum Work {
    Effects(usize, Effects),
    AppEvent(usize, AppEventKind),
}

/// An end host: runs applications over the TCP/UDP/ICMP stack.
pub struct Host {
    name: String,
    addrs: Vec<Ipv4Addr>,
    /// Routing table (hosts usually hold a single default route).
    pub table: RoutingTable,
    default_cfg: TcpConfig,
    apps: Vec<Option<Box<dyn App>>>,
    sockets: Vec<SocketEntry>,
    listeners: Vec<Listener>,
    udp_binds: HashMap<u16, usize>,
    next_port: u16,
    /// SNMP-style counters.
    pub counters: HostCounters,
}

impl Host {
    /// Creates a host with one address and a default route on interface 0.
    pub fn new(name: impl Into<String>, addr: Ipv4Addr) -> Self {
        let mut table = RoutingTable::new();
        table.add_default(IfaceId(0));
        Host {
            name: name.into(),
            addrs: vec![addr],
            table,
            default_cfg: TcpConfig::default(),
            apps: Vec::new(),
            sockets: Vec::new(),
            listeners: Vec::new(),
            udp_binds: HashMap::new(),
            next_port: 1024,
            counters: HostCounters::default(),
        }
    }

    /// Sets the default TCP configuration for new connections.
    pub fn set_default_config(&mut self, cfg: TcpConfig) {
        self.default_cfg = cfg;
    }

    /// Returns the host's primary address.
    pub fn addr(&self) -> Ipv4Addr {
        self.addrs[0]
    }

    /// Adds an additional local address (e.g. a Mobile IP home address).
    pub fn add_addr(&mut self, addr: Ipv4Addr) {
        if !self.addrs.contains(&addr) {
            self.addrs.push(addr);
        }
    }

    /// Installs an application.
    pub fn add_app(&mut self, app: Box<dyn App>) -> AppId {
        self.apps.push(Some(app));
        AppId(self.apps.len() - 1)
    }

    /// Typed access to an installed application.
    ///
    /// # Panics
    ///
    /// Panics if the application is not of type `T`.
    pub fn app_mut<T: 'static>(&mut self, id: AppId) -> &mut T {
        self.apps[id.0]
            .as_mut()
            .expect("app currently dispatched")
            .as_any()
            .downcast_mut::<T>()
            .expect("app type mismatch")
    }

    /// Returns monitoring snapshots of every socket.
    pub fn socket_infos(&self) -> Vec<SocketInfo> {
        self.sockets
            .iter()
            .enumerate()
            .map(|(i, e)| SocketInfo {
                sock: SocketId(i),
                local: e.local,
                remote: e.remote,
                state: e.conn.state(),
                stats: e.conn.stats,
                app: AppId(e.app),
            })
            .collect()
    }

    /// Number of connections currently in the ESTABLISHED or CLOSE-WAIT
    /// states (the SNMP `tcpCurrEstab` definition).
    pub fn curr_estab(&self) -> u64 {
        self.sockets
            .iter()
            .filter(|e| matches!(e.conn.state(), TcpState::Established | TcpState::CloseWait))
            .count() as u64
    }

    /// Sum of retransmitted segments over all sockets (`tcpRetransSegs`).
    pub fn retrans_segs(&self) -> u64 {
        self.sockets.iter().map(|e| e.conn.stats.retransmits).sum()
    }

    /// Direct access to a connection (used by tests and by the proxy's
    /// stream tools).
    pub fn connection(&self, sock: SocketId) -> Option<&TcpConnection> {
        self.sockets.get(sock.0).map(|e| &e.conn)
    }

    fn alloc_port(&mut self) -> u16 {
        loop {
            let port = self.next_port;
            self.next_port = self.next_port.checked_add(1).unwrap_or(1024);
            let in_use = self.sockets.iter().any(|e| e.local.1 == port)
                || self.listeners.iter().any(|l| l.port == port)
                || self.udp_binds.contains_key(&port);
            if !in_use {
                return port;
            }
        }
    }

    // ------------------------------------------------------------------
    // Work-queue machinery.
    // ------------------------------------------------------------------

    fn drain(&mut self, ctx: &mut NodeCtx<'_>, mut work: VecDeque<Work>) {
        let mut guard = 0usize;
        while let Some(item) = work.pop_front() {
            guard += 1;
            if guard > 100_000 {
                ctx.log("host work queue runaway; aborting drain");
                return;
            }
            match item {
                Work::Effects(sock, eff) => self.apply_effects(ctx, sock, eff, &mut work),
                Work::AppEvent(app, kind) => self.fire_app(ctx, app, kind, &mut work),
            }
        }
    }

    fn apply_effects(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        sock: usize,
        eff: Effects,
        work: &mut VecDeque<Work>,
    ) {
        for seg in eff.segments {
            self.emit_segment(ctx, sock, seg);
        }
        for event in eff.events {
            let (app, passive, remote) = {
                let e = &self.sockets[sock];
                (e.app, e.passive, e.remote)
            };
            let kind = match event {
                ConnEvent::Connected => {
                    if passive {
                        self.counters.tcp_passive_opens += 1;
                        AppEventKind::Accepted(SocketId(sock), remote)
                    } else {
                        AppEventKind::Connected(SocketId(sock))
                    }
                }
                ConnEvent::DataReadable => {
                    let now = ctx.now;
                    let entry = &mut self.sockets[sock];
                    let (data, eff2) = entry.conn.take_data(now);
                    if !(eff2.segments.is_empty() && eff2.events.is_empty()) {
                        work.push_back(Work::Effects(sock, eff2));
                    }
                    if data.is_empty() {
                        continue;
                    }
                    AppEventKind::Data(SocketId(sock), data)
                }
                ConnEvent::PeerClosed => AppEventKind::PeerClosed(SocketId(sock)),
                ConnEvent::Closed | ConnEvent::Reset => AppEventKind::Closed(SocketId(sock)),
            };
            work.push_back(Work::AppEvent(app, kind));
        }
        self.arm_socket_timer(ctx, sock);
        self.publish_obs(ctx, sock);
    }

    /// Publishes this connection's congestion/RTT/loss state into the
    /// observability registry, and a `tcp.state` flight-recorder event on
    /// every state transition. Called after each batch of effects; a single
    /// branch when observability is disabled.
    fn publish_obs(&mut self, ctx: &mut NodeCtx<'_>, sock: usize) {
        let Some(obs) = ctx.obs() else {
            return;
        };
        let entry = &mut self.sockets[sock];
        let scope = entry.obs_scope.get_or_insert_with(|| {
            format!(
                "{}.conn.{}:{}-{}:{}",
                self.name, entry.local.0, entry.local.1, entry.remote.0, entry.remote.1
            )
        });
        let conn = &entry.conn;
        obs.gauge(scope, "tcp.cwnd", conn.cwnd() as f64);
        obs.gauge(scope, "tcp.ssthresh", conn.ssthresh() as f64);
        obs.gauge(scope, "tcp.rto_us", conn.rto().as_micros() as f64);
        if let Some(srtt) = conn.srtt() {
            obs.gauge(scope, "tcp.srtt_us", srtt.as_micros() as f64);
        }
        let st = conn.stats;
        obs.gauge(scope, "tcp.retransmits", st.retransmits as f64);
        obs.gauge(scope, "tcp.timeouts", st.timeouts as f64);
        obs.gauge(scope, "tcp.fast_retransmits", st.fast_retransmits as f64);
        obs.gauge(scope, "tcp.dup_acks", st.dup_acks as f64);
        obs.gauge(scope, "tcp.segs_out", st.segs_out as f64);
        obs.gauge(scope, "tcp.segs_in", st.segs_in as f64);
        obs.gauge(scope, "tcp.bytes_sent", st.bytes_sent as f64);
        obs.gauge(scope, "tcp.bytes_delivered", st.bytes_delivered as f64);
        let state = conn.state();
        if state != entry.last_state {
            obs.event(
                ctx.now.as_micros(),
                scope,
                "tcp.state",
                fields!(
                    from = format!("{:?}", entry.last_state),
                    to = format!("{:?}", state),
                    cwnd = conn.cwnd(),
                    ssthresh = conn.ssthresh(),
                ),
            );
            entry.last_state = state;
        }
    }

    fn arm_socket_timer(&mut self, ctx: &mut NodeCtx<'_>, sock: usize) {
        let entry = &mut self.sockets[sock];
        let deadline = entry.conn.next_deadline();
        match (deadline, entry.timer) {
            // Already armed for exactly this deadline: nothing to do.
            (Some(d), Some((armed, _))) if d == armed => {}
            // Deadline moved (RTO restart, delayed-ACK reschedule) or
            // newly needed: cancel the superseded event, arm the new one.
            (Some(d), prev) => {
                if let Some((_, h)) = prev {
                    ctx.cancel_timer(h);
                }
                let h = ctx.set_timer_at(d, sock as u64);
                entry.timer = Some((d, h));
            }
            // No deadline left: kill any pending timer.
            (None, Some((_, h))) => {
                ctx.cancel_timer(h);
                entry.timer = None;
            }
            (None, None) => {}
        }
    }

    fn emit_segment(&mut self, ctx: &mut NodeCtx<'_>, sock: usize, mut seg: TcpSegment) {
        let entry = &self.sockets[sock];
        seg.src_port = entry.local.1;
        seg.dst_port = entry.remote.1;
        let pkt = Packet::tcp(entry.local.0, entry.remote.0, seg);
        self.counters.tcp_out_segs += 1;
        self.send_ip(ctx, pkt);
    }

    fn send_ip(&mut self, ctx: &mut NodeCtx<'_>, pkt: Packet) {
        self.counters.ip_out_requests += 1;
        match self.table.lookup(pkt.ip.dst) {
            Some(iface) => ctx.send(iface, pkt),
            None => {
                self.counters.ip_in_discards += 1;
            }
        }
    }

    fn fire_app(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        app_idx: usize,
        kind: AppEventKind,
        work: &mut VecDeque<Work>,
    ) {
        let Some(mut app) = self.apps[app_idx].take() else {
            return;
        };
        let mut actx = AppCtx::new(ctx.now);
        match kind {
            AppEventKind::Started => app.on_start(&mut actx),
            AppEventKind::Connected(s) => app.on_connected(&mut actx, s),
            AppEventKind::Accepted(s, peer) => app.on_accepted(&mut actx, s, peer),
            AppEventKind::Data(s, data) => app.on_data(&mut actx, s, data),
            AppEventKind::PeerClosed(s) => app.on_peer_closed(&mut actx, s),
            AppEventKind::Closed(s) => app.on_closed(&mut actx, s),
            AppEventKind::Timer(t) => app.on_timer(&mut actx, t),
            AppEventKind::Udp {
                from,
                dst_port,
                payload,
            } => app.on_udp(&mut actx, from, dst_port, payload),
        }
        self.apps[app_idx] = Some(app);
        let ops = actx.take_ops();
        self.run_ops(ctx, app_idx, ops, work);
    }

    fn run_ops(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        app_idx: usize,
        ops: Vec<AppOp>,
        work: &mut VecDeque<Work>,
    ) {
        for op in ops {
            match op {
                AppOp::Connect { remote, cfg } => {
                    let local_port = self.alloc_port();
                    let cfg = cfg.unwrap_or_else(|| self.default_cfg.clone());
                    let iss: u32 = ctx.rng.gen();
                    let mut conn = TcpConnection::new(cfg, iss);
                    let eff = conn.connect(ctx.now);
                    self.counters.tcp_active_opens += 1;
                    self.sockets.push(SocketEntry {
                        conn,
                        local: (self.addrs[0], local_port),
                        remote,
                        app: app_idx,
                        passive: false,
                        obs_scope: None,
                        last_state: TcpState::Closed,
                        timer: None,
                    });
                    work.push_back(Work::Effects(self.sockets.len() - 1, eff));
                }
                AppOp::Listen { port, cfg } => {
                    self.listeners.push(Listener {
                        port,
                        app: app_idx,
                        cfg,
                    });
                }
                AppOp::Send { sock, data } => {
                    if let Some(entry) = self.sockets.get_mut(sock.0) {
                        let eff = entry.conn.write(ctx.now, &data);
                        work.push_back(Work::Effects(sock.0, eff));
                    }
                }
                AppOp::Close { sock } => {
                    if let Some(entry) = self.sockets.get_mut(sock.0) {
                        let eff = entry.conn.close(ctx.now);
                        work.push_back(Work::Effects(sock.0, eff));
                    }
                }
                AppOp::BindUdp { port } => {
                    self.udp_binds.insert(port, app_idx);
                }
                AppOp::SendUdp {
                    src_port,
                    dst,
                    payload,
                } => {
                    self.counters.udp_out_datagrams += 1;
                    let dgram = UdpDatagram {
                        src_port,
                        dst_port: dst.1,
                        payload,
                    };
                    let pkt = Packet::udp(self.addrs[0], dst.0, dgram);
                    self.send_ip(ctx, pkt);
                }
                AppOp::Timer { delay, token } => {
                    let enc = APP_TIMER_BIT | ((app_idx as u64) << 32) | (token & 0xffff_ffff);
                    ctx.set_timer_after(delay, enc);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Packet input.
    // ------------------------------------------------------------------

    /// Handles a packet addressed to this host; exposed so wrappers (Mobile
    /// IP hosts) can feed decapsulated traffic through the same path.
    pub fn handle_local(&mut self, ctx: &mut NodeCtx<'_>, pkt: Packet) {
        self.counters.ip_in_delivers += 1;
        match pkt.body {
            IpPayload::Tcp(seg) => self.handle_tcp(ctx, pkt.ip.src, pkt.ip.dst, seg),
            IpPayload::Udp(dgram) => self.handle_udp(ctx, pkt.ip.src, dgram),
            IpPayload::Icmp(msg) => self.handle_icmp(ctx, pkt.ip.src, pkt.ip.dst, msg),
            IpPayload::Encap(inner) => {
                // A bare host receiving a tunnel unwraps it only if the
                // inner packet is also addressed to it.
                if self.addrs.contains(&inner.ip.dst) {
                    self.handle_local(ctx, *inner);
                } else {
                    self.counters.ip_in_discards += 1;
                }
            }
        }
    }

    fn handle_tcp(&mut self, ctx: &mut NodeCtx<'_>, src: Ipv4Addr, dst: Ipv4Addr, seg: TcpSegment) {
        self.counters.tcp_in_segs += 1;
        let key = (dst, seg.dst_port, src, seg.src_port);
        let found = self.sockets.iter().position(|e| {
            (e.local.0, e.local.1, e.remote.0, e.remote.1) == key && !e.conn.is_closed()
        });
        if let Some(sock) = found {
            let now = ctx.now;
            let eff = self.sockets[sock].conn.on_segment(now, &seg);
            let mut work = VecDeque::new();
            work.push_back(Work::Effects(sock, eff));
            self.drain(ctx, work);
            return;
        }
        // No established socket: try a listener.
        if seg.flags.syn() && !seg.flags.ack() {
            if let Some(listener) = self.listeners.iter().find(|l| l.port == seg.dst_port) {
                let app = listener.app;
                let cfg = listener
                    .cfg
                    .clone()
                    .unwrap_or_else(|| self.default_cfg.clone());
                let iss: u32 = ctx.rng.gen();
                let mut conn = TcpConnection::new(cfg, iss);
                conn.listen();
                let now = ctx.now;
                let eff = conn.on_segment(now, &seg);
                self.sockets.push(SocketEntry {
                    conn,
                    local: (dst, seg.dst_port),
                    remote: (src, seg.src_port),
                    app,
                    passive: true,
                    obs_scope: None,
                    last_state: TcpState::Closed,
                    timer: None,
                });
                let mut work = VecDeque::new();
                work.push_back(Work::Effects(self.sockets.len() - 1, eff));
                self.drain(ctx, work);
                return;
            }
        }
        // Unmatched: reset (RFC 793) unless the segment itself is a RST.
        if !seg.flags.rst() {
            self.counters.tcp_estab_resets += 1;
            let mut rst = if seg.flags.ack() {
                TcpSegment::new(seg.dst_port, seg.src_port, seg.ack, 0, TcpFlags::RST)
            } else {
                let ack = seg.seq.wrapping_add(seg.seq_len());
                TcpSegment::new(
                    seg.dst_port,
                    seg.src_port,
                    0,
                    ack,
                    TcpFlags::RST | TcpFlags::ACK,
                )
            };
            rst.window = 0;
            let pkt = Packet::tcp(dst, src, rst);
            self.counters.tcp_out_segs += 1;
            self.send_ip(ctx, pkt);
        }
    }

    fn handle_udp(&mut self, ctx: &mut NodeCtx<'_>, src: Ipv4Addr, dgram: UdpDatagram) {
        match self.udp_binds.get(&dgram.dst_port).copied() {
            Some(app) => {
                self.counters.udp_in_datagrams += 1;
                let mut work = VecDeque::new();
                work.push_back(Work::AppEvent(
                    app,
                    AppEventKind::Udp {
                        from: (src, dgram.src_port),
                        dst_port: dgram.dst_port,
                        payload: dgram.payload,
                    },
                ));
                self.drain(ctx, work);
            }
            None => {
                self.counters.udp_no_ports += 1;
            }
        }
    }

    fn handle_icmp(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        msg: IcmpMessage,
    ) {
        self.counters.icmp_in_msgs += 1;
        if let IcmpMessage::EchoRequest { id, seq, payload } = msg {
            let reply = Packet::icmp(dst, src, IcmpMessage::EchoReply { id, seq, payload });
            self.counters.icmp_out_msgs += 1;
            self.send_ip(ctx, reply);
        }
    }
}

impl Node for Host {
    fn name(&self) -> &str {
        &self.name
    }

    fn addresses(&self) -> Vec<Ipv4Addr> {
        self.addrs.clone()
    }

    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        let mut work = VecDeque::new();
        for i in 0..self.apps.len() {
            work.push_back(Work::AppEvent(i, AppEventKind::Started));
        }
        self.drain(ctx, work);
    }

    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, _iface: IfaceId, pkt: Packet) {
        self.counters.ip_in_receives += 1;
        if self.addrs.contains(&pkt.ip.dst) || pkt.ip.dst.is_broadcast() {
            self.handle_local(ctx, pkt);
        } else {
            // Plain hosts do not forward.
            self.counters.ip_in_discards += 1;
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        if token & WRAPPER_TIMER_BIT != 0 {
            return; // Owned by a wrapping node.
        }
        if token & APP_TIMER_BIT != 0 {
            let app = ((token >> 32) & 0x3fff_ffff) as usize;
            let user = token & 0xffff_ffff;
            let mut work = VecDeque::new();
            work.push_back(Work::AppEvent(app, AppEventKind::Timer(user)));
            self.drain(ctx, work);
            return;
        }
        let sock = token as usize;
        if sock >= self.sockets.len() {
            return;
        }
        // The fired event consumed its handle; forget it before re-arming.
        self.sockets[sock].timer = None;
        let now = ctx.now;
        let eff = self.sockets[sock].conn.on_timer(now);
        let mut work = VecDeque::new();
        work.push_back(Work::Effects(sock, eff));
        self.drain(ctx, work);
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }

    fn clone_node(&self) -> Option<Box<dyn Node>> {
        let mut apps: Vec<Option<Box<dyn App>>> = Vec::with_capacity(self.apps.len());
        for slot in &self.apps {
            apps.push(Some(slot.as_ref()?.clone_app()?));
        }
        Some(Box::new(Host {
            name: self.name.clone(),
            addrs: self.addrs.clone(),
            table: self.table.clone(),
            default_cfg: self.default_cfg.clone(),
            apps,
            sockets: self.sockets.clone(),
            listeners: self.listeners.clone(),
            udp_binds: self.udp_binds.clone(),
            next_port: self.next_port,
            counters: self.counters,
        }))
    }

    fn state_digest(&self, h: &mut comma_rt::digest::Fnv1a) {
        for a in &self.addrs {
            h.update(a.to_string());
        }
        // Socket slot order records accept/connect history (two SYNs in
        // the same due batch allocate slots in arrival order), while the
        // wire behavior of each connection is keyed by its 4-tuple. Fold
        // sockets in canonical 4-tuple order so converging schedules hash
        // equal regardless of which connection was set up first.
        let mut sock_digests: Vec<(u16, String, u16, u64)> = self
            .sockets
            .iter()
            .map(|e| {
                let mut sub = comma_rt::digest::Fnv1a::new();
                sub.update_u64(e.local.1 as u64);
                sub.update_u64(e.remote.1 as u64);
                sub.update_u64(e.app as u64);
                sub.update_u64(e.passive as u64);
                // The armed deadline matters (it decides what fires when);
                // the slab handle is allocation history and must stay out.
                sub.update_u64(e.timer.map_or(u64::MAX, |(d, _)| d.as_micros()));
                e.conn.state_digest(&mut sub);
                (e.local.1, e.remote.0.to_string(), e.remote.1, sub.finish())
            })
            .collect();
        sock_digests.sort_unstable();
        for (_, _, _, d) in sock_digests {
            h.update_u64(d);
        }
        for l in &self.listeners {
            h.update_u64(l.port as u64);
            h.update_u64(l.app as u64);
        }
        // HashMap iteration order is arbitrary; sort for a canonical walk.
        let mut binds: Vec<(u16, usize)> = self.udp_binds.iter().map(|(&p, &a)| (p, a)).collect();
        binds.sort_unstable();
        for (port, app) in binds {
            h.update_u64(port as u64);
            h.update_u64(app as u64);
        }
        h.update_u64(self.next_port as u64);
        for (i, slot) in self.apps.iter().enumerate() {
            if let Some(app) = slot {
                h.update_u64(i as u64);
                app.state_digest(h);
            }
        }
    }
}
