//! Modulo-2³² TCP sequence-number arithmetic (RFC 793 §3.3).
//!
//! Sequence numbers wrap, so ordinary integer comparison is wrong once a
//! connection crosses the 4 GiB boundary. These helpers implement the
//! standard "signed difference" comparisons used throughout the stack and
//! by the TTSF's edit map.

/// Returns `a < b` in sequence space.
#[inline]
pub fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

/// Returns `a <= b` in sequence space.
#[inline]
pub fn seq_le(a: u32, b: u32) -> bool {
    a == b || seq_lt(a, b)
}

/// Returns `a > b` in sequence space.
#[inline]
pub fn seq_gt(a: u32, b: u32) -> bool {
    seq_lt(b, a)
}

/// Returns `a >= b` in sequence space.
#[inline]
pub fn seq_ge(a: u32, b: u32) -> bool {
    seq_le(b, a)
}

/// Returns `true` if `x` lies in the half-open interval `[lo, hi)` in
/// sequence space.
#[inline]
pub fn seq_in(x: u32, lo: u32, hi: u32) -> bool {
    seq_le(lo, x) && seq_lt(x, hi)
}

/// Returns the distance from `from` to `to`, assuming `to >= from`.
#[inline]
pub fn seq_diff(to: u32, from: u32) -> u32 {
    to.wrapping_sub(from)
}

/// Returns the larger of two sequence numbers.
#[inline]
pub fn seq_max(a: u32, b: u32) -> u32 {
    if seq_ge(a, b) {
        a
    } else {
        b
    }
}

/// Returns the smaller of two sequence numbers.
#[inline]
pub fn seq_min(a: u32, b: u32) -> u32 {
    if seq_le(a, b) {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ordering() {
        assert!(seq_lt(1, 2));
        assert!(!seq_lt(2, 2));
        assert!(seq_le(2, 2));
        assert!(seq_gt(3, 2));
        assert!(seq_ge(3, 3));
    }

    #[test]
    fn wraparound_ordering() {
        let just_before = u32::MAX - 10;
        let just_after = 5u32;
        assert!(seq_lt(just_before, just_after));
        assert!(seq_gt(just_after, just_before));
        assert_eq!(seq_diff(just_after, just_before), 16);
    }

    #[test]
    fn interval_membership() {
        assert!(seq_in(5, 5, 10));
        assert!(!seq_in(10, 5, 10));
        // Interval spanning the wrap point.
        assert!(seq_in(2, u32::MAX - 2, 8));
        assert!(!seq_in(100, u32::MAX - 2, 8));
    }

    #[test]
    fn min_max_wrap() {
        let a = u32::MAX - 1;
        let b = 3;
        assert_eq!(seq_max(a, b), b);
        assert_eq!(seq_min(a, b), a);
    }
}
