//! TCP tunables.

use comma_netsim::time::SimDuration;

/// Loss-recovery style.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Recovery {
    /// 4.3BSD Tahoe: fast retransmit, then slow start from one segment.
    Tahoe,
    /// 4.3BSD Reno: fast retransmit plus fast recovery (window halving).
    Reno,
}

/// Configuration of a TCP connection.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Maximum segment size in bytes (advertised in the SYN).
    pub mss: u16,
    /// Receive-buffer capacity; bounds the advertised window (≤ 65535).
    pub recv_buffer: u32,
    /// Initial congestion window in segments.
    pub initial_cwnd_segments: u32,
    /// Initial RTO before any RTT sample.
    pub initial_rto: SimDuration,
    /// Lower clamp for the RTO.
    pub min_rto: SimDuration,
    /// Upper clamp for the RTO (the thesis-era 64 s ceiling).
    pub max_rto: SimDuration,
    /// Loss-recovery algorithm.
    pub recovery: Recovery,
    /// Enable delayed ACKs (ack every second segment or after the timer).
    pub delayed_ack: bool,
    /// Delayed-ACK timer.
    pub delack_timeout: SimDuration,
    /// TIME-WAIT hold time (2·MSL; shortened by default so experiments
    /// drain quickly).
    pub time_wait: SimDuration,
    /// Initial persist (zero-window probe) interval.
    pub persist_initial: SimDuration,
    /// Maximum persist interval after backoff.
    pub persist_max: SimDuration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            recv_buffer: 32 * 1024,
            initial_cwnd_segments: 1,
            initial_rto: SimDuration::from_secs(3),
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(64),
            recovery: Recovery::Reno,
            delayed_ack: true,
            delack_timeout: SimDuration::from_millis(200),
            time_wait: SimDuration::from_secs(5),
            persist_initial: SimDuration::from_millis(500),
            persist_max: SimDuration::from_secs(60),
        }
    }
}

impl TcpConfig {
    /// A late-1990s profile: 536-byte MSS, 16 KiB window, 1 s minimum RTO
    /// with 500 ms clock granularity behaviour approximated by the clamp.
    pub fn era_1998() -> Self {
        TcpConfig {
            mss: 536,
            recv_buffer: 16 * 1024,
            min_rto: SimDuration::from_secs(1),
            ..TcpConfig::default()
        }
    }

    /// Returns `self` with the given MSS.
    pub fn with_mss(mut self, mss: u16) -> Self {
        self.mss = mss;
        self
    }

    /// Returns `self` with the given receive-buffer capacity.
    pub fn with_recv_buffer(mut self, bytes: u32) -> Self {
        self.recv_buffer = bytes.min(65_535);
        self
    }

    /// Returns `self` with the given recovery algorithm.
    pub fn with_recovery(mut self, recovery: Recovery) -> Self {
        self.recovery = recovery;
        self
    }

    /// Returns `self` with delayed ACKs enabled or disabled.
    pub fn with_delayed_ack(mut self, on: bool) -> Self {
        self.delayed_ack = on;
        self
    }

    /// Initial congestion window in bytes.
    pub fn initial_cwnd(&self) -> u32 {
        self.initial_cwnd_segments * self.mss as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let c = TcpConfig::default();
        assert_eq!(c.mss, 1460);
        assert!(c.recv_buffer <= 65_535 || c.recv_buffer == 32 * 1024);
        assert_eq!(c.initial_cwnd(), 1460);
    }

    #[test]
    fn builders() {
        let c = TcpConfig::default()
            .with_mss(536)
            .with_recv_buffer(200_000)
            .with_recovery(Recovery::Tahoe)
            .with_delayed_ack(false);
        assert_eq!(c.mss, 536);
        assert_eq!(c.recv_buffer, 65_535, "clamped to the 16-bit window field");
        assert_eq!(c.recovery, Recovery::Tahoe);
        assert!(!c.delayed_ack);
    }

    #[test]
    fn era_profile() {
        let c = TcpConfig::era_1998();
        assert_eq!(c.mss, 536);
        assert_eq!(c.min_rto, SimDuration::from_secs(1));
    }
}
