//! Send and receive buffers.
//!
//! The send buffer holds the bytes from `SND.UNA` forward (both in-flight
//! and unsent) so that any range can be retransmitted; the receive buffer
//! reassembles out-of-order segments and meters the advertised window.

use std::collections::BTreeMap;

use comma_rt::Bytes;

use crate::seq::{seq_diff, seq_ge, seq_le, seq_lt};

/// Sender-side byte store, addressed by absolute sequence number.
#[derive(Clone, Debug, Default)]
pub struct SendBuffer {
    base_seq: u32,
    data: Vec<u8>,
}

impl SendBuffer {
    /// Creates a buffer whose first byte will carry sequence `base_seq`.
    pub fn new(base_seq: u32) -> Self {
        SendBuffer {
            base_seq,
            data: Vec::new(),
        }
    }

    /// Sequence number of the first retained byte (= `SND.UNA`).
    pub fn base_seq(&self) -> u32 {
        self.base_seq
    }

    /// Folds the buffer (base sequence and retained bytes) into a
    /// canonical state fingerprint.
    pub fn state_digest(&self, h: &mut comma_rt::digest::Fnv1a) {
        h.update_u64(self.base_seq as u64);
        h.update(&self.data[..]);
    }

    /// Sequence number one past the last buffered byte.
    pub fn end_seq(&self) -> u32 {
        self.base_seq.wrapping_add(self.data.len() as u32)
    }

    /// Number of buffered bytes (acked bytes are discarded).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if no bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends application bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Copies out up to `max` bytes starting at sequence `seq`; returns an
    /// empty buffer if `seq` is outside the retained range.
    pub fn slice(&self, seq: u32, max: usize) -> Bytes {
        if seq_lt(seq, self.base_seq) || seq_ge(seq, self.end_seq()) {
            return Bytes::new();
        }
        let off = seq_diff(seq, self.base_seq) as usize;
        let end = (off + max).min(self.data.len());
        Bytes::copy_from_slice(&self.data[off..end])
    }

    /// Discards bytes below `ack` (they were cumulatively acknowledged).
    pub fn ack_to(&mut self, ack: u32) {
        if seq_le(ack, self.base_seq) {
            return;
        }
        let n = seq_diff(ack, self.base_seq) as usize;
        let n = n.min(self.data.len());
        self.data.drain(..n);
        self.base_seq = self.base_seq.wrapping_add(n as u32);
    }
}

/// Receiver-side reassembly buffer.
#[derive(Clone, Debug)]
pub struct RecvBuffer {
    rcv_nxt: u32,
    capacity: u32,
    /// Contiguous in-order bytes not yet taken by the application.
    ready: Vec<u8>,
    /// Out-of-order segments keyed by their starting sequence number.
    ooo: BTreeMap<u32, Bytes>,
}

impl RecvBuffer {
    /// Creates a buffer expecting `rcv_nxt` as its first byte.
    pub fn new(rcv_nxt: u32, capacity: u32) -> Self {
        RecvBuffer {
            rcv_nxt,
            capacity,
            ready: Vec::new(),
            ooo: BTreeMap::new(),
        }
    }

    /// Next expected sequence number.
    pub fn rcv_nxt(&self) -> u32 {
        self.rcv_nxt
    }

    /// Folds the reassembly state (cursor, undelivered bytes, out-of-order
    /// segments in sequence order) into a canonical state fingerprint.
    pub fn state_digest(&self, h: &mut comma_rt::digest::Fnv1a) {
        h.update_u64(self.rcv_nxt as u64);
        h.update_u64(self.capacity as u64);
        h.update(&self.ready[..]);
        for (seq, data) in &self.ooo {
            h.update_u64(*seq as u64);
            h.update(&data[..]);
        }
    }

    /// Bytes available to the application.
    pub fn readable(&self) -> usize {
        self.ready.len()
    }

    /// Current advertised window: capacity minus bytes the application has
    /// not consumed yet.
    pub fn window(&self) -> u32 {
        self.capacity
            .saturating_sub(self.ready.len() as u32)
            .min(65_535)
    }

    /// Accepts segment bytes starting at `seq`. Returns `true` if the
    /// segment advanced `RCV.NXT` (an in-order delivery), `false` if it was
    /// out of order, a duplicate, or empty.
    pub fn receive(&mut self, seq: u32, data: &[u8]) -> bool {
        if data.is_empty() {
            return false;
        }
        let end = seq.wrapping_add(data.len() as u32);
        if seq_le(end, self.rcv_nxt) {
            return false; // Entirely old.
        }
        if seq_lt(self.rcv_nxt, seq) {
            // A gap: stash out of order (trim nothing; overlaps resolved on
            // drain by preferring already-delivered bytes).
            self.ooo
                .entry(seq)
                .or_insert_with(|| Bytes::copy_from_slice(data));
            return false;
        }
        // Overlaps rcv_nxt: trim the stale prefix and deliver.
        let skip = seq_diff(self.rcv_nxt, seq) as usize;
        self.ready.extend_from_slice(&data[skip..]);
        self.rcv_nxt = end;
        self.drain_ooo();
        true
    }

    fn drain_ooo(&mut self) {
        while let Some((&seq, _)) = self.ooo.iter().next() {
            if !seq_le(seq, self.rcv_nxt) {
                break;
            }
            let data = self.ooo.remove(&seq).expect("present");
            let end = seq.wrapping_add(data.len() as u32);
            if seq_lt(self.rcv_nxt, end) {
                let skip = seq_diff(self.rcv_nxt, seq) as usize;
                self.ready.extend_from_slice(&data[skip..]);
                self.rcv_nxt = end;
            }
        }
    }

    /// Returns `true` if any out-of-order data is buffered (a hole exists).
    pub fn has_holes(&self) -> bool {
        !self.ooo.is_empty()
    }

    /// Advances `RCV.NXT` past a peer FIN's sequence slot. Readable bytes
    /// are preserved; any stale out-of-order fragments are discarded (no
    /// data can follow a FIN).
    pub fn consume_fin(&mut self) {
        self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
        self.ooo.clear();
    }

    /// Takes all readable bytes (application consumption).
    pub fn take(&mut self) -> Bytes {
        Bytes::from(std::mem::take(&mut self.ready))
    }

    /// Takes up to `max` readable bytes.
    pub fn take_up_to(&mut self, max: usize) -> Bytes {
        if max >= self.ready.len() {
            return self.take();
        }
        let rest = self.ready.split_off(max);
        let head = std::mem::replace(&mut self.ready, rest);
        Bytes::from(head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_buffer_slicing_and_acks() {
        let mut sb = SendBuffer::new(1000);
        sb.push(b"hello world");
        assert_eq!(sb.end_seq(), 1011);
        assert_eq!(&sb.slice(1000, 5)[..], b"hello");
        assert_eq!(&sb.slice(1006, 100)[..], b"world");
        assert!(sb.slice(999, 5).is_empty());
        assert!(sb.slice(1011, 5).is_empty());
        sb.ack_to(1006);
        assert_eq!(sb.base_seq(), 1006);
        assert_eq!(&sb.slice(1006, 5)[..], b"world");
        // Stale ACK ignored.
        sb.ack_to(1000);
        assert_eq!(sb.base_seq(), 1006);
    }

    #[test]
    fn send_buffer_wraparound() {
        let base = u32::MAX - 4;
        let mut sb = SendBuffer::new(base);
        sb.push(b"0123456789");
        assert_eq!(sb.end_seq(), 5);
        assert_eq!(&sb.slice(u32::MAX, 3)[..], b"456");
        sb.ack_to(2);
        assert_eq!(sb.base_seq(), 2);
        assert_eq!(&sb.slice(2, 10)[..], b"789");
    }

    #[test]
    fn recv_in_order() {
        let mut rb = RecvBuffer::new(0, 1000);
        assert!(rb.receive(0, b"abc"));
        assert!(rb.receive(3, b"def"));
        assert_eq!(rb.rcv_nxt(), 6);
        assert_eq!(&rb.take()[..], b"abcdef");
        assert_eq!(rb.readable(), 0);
    }

    #[test]
    fn recv_out_of_order_reassembly() {
        let mut rb = RecvBuffer::new(0, 1000);
        assert!(!rb.receive(3, b"def"));
        assert!(rb.has_holes());
        assert!(rb.receive(0, b"abc"));
        assert!(!rb.has_holes());
        assert_eq!(rb.rcv_nxt(), 6);
        assert_eq!(&rb.take()[..], b"abcdef");
    }

    #[test]
    fn recv_duplicate_and_overlap() {
        let mut rb = RecvBuffer::new(0, 1000);
        assert!(rb.receive(0, b"abcd"));
        assert!(!rb.receive(0, b"abcd"), "exact duplicate");
        assert!(rb.receive(2, b"cdef"), "overlapping retransmission");
        assert_eq!(rb.rcv_nxt(), 6);
        assert_eq!(&rb.take()[..], b"abcdef");
    }

    #[test]
    fn window_shrinks_until_app_reads() {
        let mut rb = RecvBuffer::new(0, 100);
        assert_eq!(rb.window(), 100);
        rb.receive(0, &[0u8; 60]);
        assert_eq!(rb.window(), 40);
        rb.receive(60, &[0u8; 40]);
        assert_eq!(rb.window(), 0);
        let taken = rb.take_up_to(30);
        assert_eq!(taken.len(), 30);
        assert_eq!(rb.window(), 30);
        rb.take();
        assert_eq!(rb.window(), 100);
    }

    #[test]
    fn ooo_chain_drains() {
        let mut rb = RecvBuffer::new(0, 1000);
        rb.receive(6, b"gh");
        rb.receive(3, b"def");
        assert_eq!(rb.readable(), 0);
        rb.receive(0, b"abc");
        assert_eq!(&rb.take()[..], b"abcdefgh");
    }
}
