//! Retransmission-timeout estimation: Jacobson/Karels smoothed RTT with
//! Karn's rule and exponential backoff (the behaviour §2.2 of the thesis
//! describes).

use comma_netsim::time::SimDuration;

/// RTO estimator state.
///
/// Maintains the smoothed round-trip time (SRTT) and mean deviation
/// (RTTVAR) in microseconds using the standard gains (1/8, 1/4), and
/// produces `RTO = SRTT + 4·RTTVAR`, clamped to configured bounds. Karn's
/// rule is applied by the caller: retransmitted segments are never sampled.
#[derive(Clone, Copy, Debug)]
pub struct RtoEstimator {
    srtt: Option<f64>,
    rttvar: f64,
    min: SimDuration,
    max: SimDuration,
    initial: SimDuration,
    backoff_shift: u32,
}

impl RtoEstimator {
    /// Creates an estimator with the given initial RTO and clamp bounds.
    pub fn new(initial: SimDuration, min: SimDuration, max: SimDuration) -> Self {
        RtoEstimator {
            srtt: None,
            rttvar: 0.0,
            min,
            max,
            initial,
            backoff_shift: 0,
        }
    }

    /// Feeds one RTT sample (a non-retransmitted segment's ACK delay).
    pub fn sample(&mut self, rtt: SimDuration) {
        let r = rtt.as_micros() as f64;
        match self.srtt {
            None => {
                // RFC 6298 §2.2 initial sample.
                self.srtt = Some(r);
                self.rttvar = r / 2.0;
            }
            Some(srtt) => {
                let err = (r - srtt).abs();
                self.rttvar = 0.75 * self.rttvar + 0.25 * err;
                self.srtt = Some(0.875 * srtt + 0.125 * r);
            }
        }
        // A successful sample also ends any backoff sequence.
        self.backoff_shift = 0;
    }

    /// Doubles the effective RTO (called on each retransmission timeout).
    pub fn backoff(&mut self) {
        if self.backoff_shift < 12 {
            self.backoff_shift += 1;
        }
    }

    /// Clears the exponential backoff. Only the handshake completion calls
    /// this: per RFC 6298 §5.7 a data ACK alone must not collapse a
    /// backed-off timer (the ACK may cover a retransmission with no
    /// measurable RTT under Karn's rule); data-path backoff ends through
    /// [`RtoEstimator::sample`] when a fresh measurement arrives.
    pub fn clear_backoff(&mut self) {
        self.backoff_shift = 0;
    }

    /// Returns the current backoff shift (0 = no backoff).
    pub fn backoff_shift(&self) -> u32 {
        self.backoff_shift
    }

    /// Folds the estimator (smoothed RTT, deviation, backoff) into a
    /// canonical state fingerprint. The clamp bounds come from the
    /// configuration and are hashed by the owner.
    pub fn state_digest(&self, h: &mut comma_rt::digest::Fnv1a) {
        h.update_u64(self.srtt.map_or(u64::MAX, |v| v.to_bits()));
        h.update_u64(self.rttvar.to_bits());
        h.update_u64(self.backoff_shift as u64);
    }

    /// Returns the smoothed RTT, if any sample has been taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt.map(|v| SimDuration::from_micros(v as u64))
    }

    /// Current retransmission timeout, including backoff and clamping.
    pub fn rto(&self) -> SimDuration {
        let base = match self.srtt {
            None => self.initial,
            Some(srtt) => {
                let rto = srtt + (4.0 * self.rttvar).max(1.0);
                SimDuration::from_micros(rto as u64)
            }
        };
        let backed = base.saturating_mul(1u64 << self.backoff_shift);
        backed.max(self.min).min(self.max)
    }
}

impl Default for RtoEstimator {
    fn default() -> Self {
        RtoEstimator::new(
            SimDuration::from_secs(3),
            SimDuration::from_millis(200),
            SimDuration::from_secs(64),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_rto_until_first_sample() {
        let est = RtoEstimator::default();
        assert_eq!(est.rto(), SimDuration::from_secs(3));
        assert!(est.srtt().is_none());
    }

    #[test]
    fn converges_to_stable_rtt() {
        let mut est = RtoEstimator::default();
        for _ in 0..50 {
            est.sample(SimDuration::from_millis(100));
        }
        let srtt = est.srtt().unwrap();
        assert!((srtt.as_millis() as i64 - 100).abs() <= 1, "srtt={srtt}");
        // With zero variance the RTO clamps to the minimum.
        assert_eq!(est.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn variance_raises_rto() {
        let mut est = RtoEstimator::default();
        for i in 0..100 {
            let ms = if i % 2 == 0 { 50 } else { 250 };
            est.sample(SimDuration::from_millis(ms));
        }
        // Mean 150 ms, mean deviation ≈ 100 ms → RTO ≈ 550 ms.
        let rto = est.rto();
        assert!(rto > SimDuration::from_millis(350), "rto={rto}");
        assert!(rto < SimDuration::from_millis(800), "rto={rto}");
    }

    #[test]
    fn exponential_backoff_and_clamp() {
        let mut est = RtoEstimator::default();
        est.sample(SimDuration::from_millis(100));
        let base = est.rto();
        est.backoff();
        assert_eq!(
            est.rto(),
            base.saturating_mul(2).max(SimDuration::from_millis(200))
        );
        for _ in 0..20 {
            est.backoff();
        }
        assert_eq!(est.rto(), SimDuration::from_secs(64), "clamped to max");
        est.clear_backoff();
        assert_eq!(est.rto(), base);
    }

    #[test]
    fn sample_resets_backoff() {
        let mut est = RtoEstimator::default();
        est.sample(SimDuration::from_millis(100));
        est.backoff();
        est.backoff();
        assert!(est.backoff_shift() == 2);
        est.sample(SimDuration::from_millis(100));
        assert_eq!(est.backoff_shift(), 0);
    }
}
