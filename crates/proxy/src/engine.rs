//! The filtering mechanism (Fig 5.1/5.2): stream registry, filter pool,
//! per-key in/out filter queues, and filter accounting.
//!
//! # The fast dispatch path
//!
//! [`FilterEngine::process`] is the code every single packet traverses, so
//! it is written to avoid per-packet allocation and deep copies entirely
//! (see DESIGN.md's "Performance" section):
//!
//! - flow state lives in an FNV-hashed [`FlowTable`] whose entries cache
//!   the member list as an `Rc<[usize]>` (refcount bump per packet, no
//!   `Vec` clone) behind a registration-generation stamp (no per-packet
//!   wild-card scan);
//! - capability diffing takes a [`PacketSnap`] — header fields by value
//!   plus the payload's `Bytes` handle — instead of cloning the packet per
//!   filter; payload change detection is a pointer/length identity check
//!   with an FNV-1a digest fallback, never a byte-by-byte compare of
//!   untouched payloads;
//! - filter kinds are interned as `Arc<str>`, so attributing stats, obs
//!   scopes, and log lines costs a refcount bump, not four `String`
//!   allocations per filter per packet.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Deref;
use std::rc::Rc;
use std::sync::Arc;

use comma_netsim::packet::{
    IpPayload, Ipv4Header, Packet, TcpFlags, TcpOption, TcpSegment, UdpDatagram,
};
use comma_netsim::time::SimTime;
use comma_obs::Obs;
use comma_rt::digest::fnv1a;
use comma_rt::{Bytes, SmallRng};

use crate::batch::PacketBatch;
use crate::filter::{Capabilities, Filter, FilterCtx, MetricsSource, Priority};
use crate::flow::FlowTable;
use crate::key::{StreamKey, WildKey};

/// Factory producing filter instances from `add`-command arguments.
pub type FilterFactory = Box<dyn Fn(&[String]) -> Result<Box<dyn Filter>, String>>;

/// The filter pool: factories known to the proxy ("compiled in" or loadable
/// from the repository), and the set currently loaded. Factories are
/// reference-counted so cloning the catalog (world snapshots) shares them
/// instead of requiring cloneable closures.
#[derive(Clone, Default)]
pub struct FilterCatalog {
    factories: BTreeMap<String, Rc<FilterFactory>>,
    loaded: BTreeSet<String>,
}

impl FilterCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        FilterCatalog::default()
    }

    /// Registers a factory under `name` (the filter repository).
    pub fn register(&mut self, name: impl Into<String>, factory: FilterFactory) {
        self.factories.insert(name.into(), Rc::new(factory));
    }

    /// Registers a factory and immediately loads it (a "standard set"
    /// filter compiled into the SP, §5.2).
    pub fn register_loaded(&mut self, name: impl Into<String>, factory: FilterFactory) {
        let name = name.into();
        self.loaded.insert(name.clone());
        self.factories.insert(name, Rc::new(factory));
    }

    /// Loads a filter library file; returns the registered filter name.
    /// The file stem (e.g. `rdrop` from `/lib/rdrop.so`) selects the
    /// factory.
    pub fn load(&mut self, library_file: &str) -> Option<String> {
        let stem = library_file
            .rsplit('/')
            .next()
            .unwrap_or(library_file)
            .split('.')
            .next()
            .unwrap_or(library_file)
            .to_string();
        if self.factories.contains_key(&stem) {
            self.loaded.insert(stem.clone());
            Some(stem)
        } else {
            None
        }
    }

    /// Unloads a filter library file; returns whether it was loaded.
    pub fn unload(&mut self, library_file: &str) -> bool {
        let stem = library_file
            .rsplit('/')
            .next()
            .unwrap_or(library_file)
            .split('.')
            .next()
            .unwrap_or(library_file);
        self.loaded.remove(stem)
    }

    /// Returns `true` if `name` is loaded and instantiable.
    pub fn is_loaded(&self, name: &str) -> bool {
        self.loaded.contains(name)
    }

    /// Names of loaded filters, sorted.
    pub fn loaded_names(&self) -> Vec<String> {
        self.loaded.iter().cloned().collect()
    }

    fn instantiate(&self, name: &str, args: &[String]) -> Result<Box<dyn Filter>, String> {
        if !self.loaded.contains(name) {
            return Err(format!("filter {name} not loaded"));
        }
        let factory = self
            .factories
            .get(name)
            .ok_or_else(|| format!("no factory {name}"))?;
        factory(args)
    }
}

/// A service request in the stream registry: apply `filter` to streams
/// matching `wild`.
#[derive(Debug, Clone)]
pub struct Registration {
    /// Registry slot.
    pub id: usize,
    /// Key pattern.
    pub wild: WildKey,
    /// Filter name.
    pub filter: String,
    /// Instantiation arguments.
    pub args: Vec<String>,
}

/// Per-instance accounting (§5.2 "filter accounting").
#[derive(Clone, Copy, Debug, Default)]
pub struct InstanceStats {
    /// Packets inspected by the in method.
    pub pkts_seen: u64,
    /// Packets modified by the out method.
    pub pkts_modified: u64,
    /// Packets dropped by the out method.
    pub pkts_dropped: u64,
    /// Packets injected.
    pub pkts_injected: u64,
    /// Payload bytes removed (positive) or added (negative net effect is
    /// folded into `bytes_added`).
    pub bytes_removed: u64,
    /// Payload bytes added.
    pub bytes_added: u64,
    /// Capability violations blocked by the engine.
    pub violations: u64,
}

struct Instance {
    filter: Box<dyn Filter>,
    /// Interned catalog name; cloning is a refcount bump (hot path).
    kind: Arc<str>,
    registration: usize,
    keys: BTreeSet<StreamKey>,
    priority: Priority,
    caps: Capabilities,
    /// Cached [`Filter::observes_in`] (sampled once at instantiation): the
    /// in-pass is skipped wholesale for out-only filters.
    wants_in: bool,
    stats: InstanceStats,
}

/// Bounded engine diagnostic log: keeps the most recent lines (violation
/// reports, filter events, teardown notices) up to a cap, counting what it
/// sheds — a violation-heavy stream must not grow memory without bound.
///
/// Dereferences to `[String]`, so indexing, slicing, and iteration read
/// like the plain `Vec<String>` it replaces.
#[derive(Clone, Debug)]
pub struct EngineLog {
    lines: Vec<String>,
    max_entries: usize,
    dropped: u64,
}

impl EngineLog {
    /// Default retention cap.
    pub const DEFAULT_MAX_ENTRIES: usize = 10_000;

    /// Creates an empty log with the default cap.
    pub fn new() -> Self {
        EngineLog {
            lines: Vec::new(),
            max_entries: Self::DEFAULT_MAX_ENTRIES,
            dropped: 0,
        }
    }

    /// Limits the number of retained lines (oldest dropped first, like
    /// `Trace::set_max_entries`). A cap of zero is treated as one.
    pub fn set_max_entries(&mut self, max: usize) {
        self.max_entries = max.max(1);
        if self.lines.len() > self.max_entries {
            let excess = self.lines.len() - self.max_entries;
            self.lines.drain(..excess);
            self.dropped += excess as u64;
        }
    }

    /// Appends a line, shedding the oldest if at capacity.
    pub fn push(&mut self, line: String) {
        if self.lines.len() >= self.max_entries {
            let excess = self.lines.len() + 1 - self.max_entries;
            self.lines.drain(..excess);
            self.dropped += excess as u64;
        }
        self.lines.push(line);
    }

    /// How many lines have been shed to stay under the cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained lines, oldest first.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Clears retained lines (the dropped count is kept).
    pub fn clear(&mut self) {
        self.lines.clear();
    }
}

impl Default for EngineLog {
    fn default() -> Self {
        EngineLog::new()
    }
}

impl Deref for EngineLog {
    type Target = [String];
    fn deref(&self) -> &[String] {
        &self.lines
    }
}

/// Engine-level totals.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Packets offered to the engine.
    pub pkts: u64,
    /// Packets dropped by filters.
    pub drops: u64,
    /// Packets modified by filters.
    pub modified: u64,
    /// Packets injected by filters.
    pub injected: u64,
    /// Same-flow runs dispatched through the filter queues. A scalar
    /// [`FilterEngine::process`] call counts as a depth-1 batch, so
    /// `batch_pkts / batches` is the honest average batch depth.
    pub batches: u64,
    /// Packets carried by those runs.
    pub batch_pkts: u64,
}

/// Snapshot of one filter instance for monitoring tools.
#[derive(Clone, Debug)]
pub struct InstanceInfo {
    /// Instance slot.
    pub id: usize,
    /// Filter name.
    pub kind: String,
    /// Keys currently serviced.
    pub keys: Vec<StreamKey>,
    /// Priority.
    pub priority: Priority,
    /// Accounting counters.
    pub stats: InstanceStats,
}

/// The Service Proxy filtering engine.
pub struct FilterEngine {
    /// The filter pool.
    pub catalog: FilterCatalog,
    registrations: Vec<Option<Registration>>,
    /// Bumped on every registration-set change; flow entries stamped with
    /// an older generation re-expand on their next packet.
    reg_generation: u64,
    instances: Vec<Option<Instance>>,
    flows: FlowTable,
    /// Interned filter-kind strings (tiny; linear scan on intern).
    kinds: Vec<Arc<str>>,
    /// Diagnostic log lines emitted by filters and the engine (bounded;
    /// see [`EngineLog`]).
    pub log: EngineLog,
    /// Engine totals.
    pub totals: EngineStats,
    pending_timers: Vec<(comma_netsim::time::SimDuration, u64)>,
    /// Observability handle (disabled by default). When enabled, the engine
    /// keeps per-filter packet/byte/drop counters (scope = filter kind),
    /// forwards filter events to the flight recorder, and samples dispatch
    /// wall-clock latency (`wall.`-prefixed, never exported).
    obs: Obs,
    /// Recycled dispatch storage (batch, snapshots, injection staging):
    /// taken at the top of `process`/`process_batch` and restored on exit,
    /// so steady state allocates nothing at batch granularity.
    scratch: EngineScratch,
}

/// Recycled per-dispatch storage; see [`FilterEngine::process_batch`].
#[derive(Default)]
struct EngineScratch {
    batch: PacketBatch,
    /// Pre-`on_out_batch` snapshots of the live packets, by batch index.
    snaps: Vec<(u32, PacketSnap)>,
    /// Capability-cleared injections staged for assembly, tagged with the
    /// batch index of the packet they follow.
    injections: Vec<(u32, Packet)>,
    /// Parallel to the batch: whether any filter modified the packet.
    modified: Vec<bool>,
}

impl FilterEngine {
    /// Creates an engine over a catalog.
    pub fn new(catalog: FilterCatalog) -> Self {
        FilterEngine {
            catalog,
            registrations: Vec::new(),
            reg_generation: 1,
            instances: Vec::new(),
            flows: FlowTable::new(),
            kinds: Vec::new(),
            log: EngineLog::new(),
            totals: EngineStats::default(),
            pending_timers: Vec::new(),
            obs: Obs::new(),
            scratch: EngineScratch::default(),
        }
    }

    /// Interns a filter-kind name; repeated kinds share one allocation.
    fn intern_kind(&mut self, name: &str) -> Arc<str> {
        if let Some(k) = self.kinds.iter().find(|k| &***k == name) {
            return Arc::clone(k);
        }
        let k: Arc<str> = Arc::from(name);
        self.kinds.push(Arc::clone(&k));
        k
    }

    /// Shares an observability handle with the engine (typically the
    /// simulator's). Replaces the default disabled handle.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The engine's observability handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Adds a service registration: apply `filter` (with `args`) to streams
    /// matching `wild`. Fails if the filter is not loaded.
    pub fn register(
        &mut self,
        wild: WildKey,
        filter: &str,
        args: Vec<String>,
    ) -> Result<usize, String> {
        if !self.catalog.is_loaded(filter) {
            return Err(format!("filter {filter} not loaded"));
        }
        let id = self.registrations.len();
        self.registrations.push(Some(Registration {
            id,
            wild,
            filter: filter.to_string(),
            args,
        }));
        // Existing flows matching the new registration pick it up on their
        // next packet: the generation bump invalidates their stamps, and
        // the applied-set check keeps expansion idempotent.
        self.reg_generation += 1;
        Ok(id)
    }

    /// Removes registrations of `filter` whose pattern equals `wild`, and
    /// tears down the instances they created. Returns how many
    /// registrations were removed.
    pub fn deregister(
        &mut self,
        now: SimTime,
        rng: &mut SmallRng,
        metrics: &dyn MetricsSource,
        filter: &str,
        wild: WildKey,
    ) -> usize {
        let mut removed_regs = Vec::new();
        for slot in &mut self.registrations {
            if let Some(reg) = slot {
                if reg.filter == filter && reg.wild == wild {
                    removed_regs.push(reg.id);
                    *slot = None;
                }
            }
        }
        for &reg_id in &removed_regs {
            let victims: Vec<usize> = self
                .instances
                .iter()
                .enumerate()
                .filter_map(|(i, slot)| {
                    slot.as_ref()
                        .filter(|inst| inst.registration == reg_id)
                        .map(|_| i)
                })
                .collect();
            for inst_id in victims {
                self.remove_instance(now, rng, metrics, inst_id);
            }
            for entry in self.flows.values_mut() {
                entry.applied.remove(&reg_id);
            }
        }
        if !removed_regs.is_empty() {
            self.reg_generation += 1;
        }
        removed_regs.len()
    }

    fn remove_instance(
        &mut self,
        now: SimTime,
        rng: &mut SmallRng,
        metrics: &dyn MetricsSource,
        inst_id: usize,
    ) {
        let Some(mut inst) = self.instances[inst_id].take() else {
            return;
        };
        self.flows.evict_instance(inst_id);
        let mut ctx = FilterCtx::new(now, rng, metrics);
        inst.filter.on_removed(&mut ctx);
        self.drain_ctx(now, &inst.kind, &mut ctx);
    }

    /// Current registrations.
    pub fn registrations(&self) -> Vec<Registration> {
        self.registrations.iter().flatten().cloned().collect()
    }

    /// Monitoring snapshot of live filter instances.
    pub fn instance_infos(&self) -> Vec<InstanceInfo> {
        self.instances
            .iter()
            .enumerate()
            .filter_map(|(id, slot)| {
                slot.as_ref().map(|inst| InstanceInfo {
                    id,
                    kind: inst.kind.to_string(),
                    keys: inst.keys.iter().copied().collect(),
                    priority: inst.priority,
                    stats: inst.stats,
                })
            })
            .collect()
    }

    /// Active stream keys with the filters applied to each, in queue order
    /// (sorted by key for stable display).
    pub fn streams(&self) -> Vec<(StreamKey, Vec<String>)> {
        let mut out: Vec<(StreamKey, Vec<String>)> = self
            .flows
            .iter()
            .map(|(key, entry)| {
                let names = entry
                    .members
                    .iter()
                    .filter_map(|&m| self.instances[m].as_ref().map(|i| i.kind.to_string()))
                    .collect();
                (*key, names)
            })
            .collect();
        out.sort_by_key(|(key, _)| *key);
        out
    }

    /// Typed access to every live instance of a filter kind (tools,
    /// invariant sweeps).
    pub fn instances_as<T: 'static>(&mut self, kind: &str) -> Vec<&mut T> {
        self.instances
            .iter_mut()
            .flatten()
            .filter(|i| &*i.kind == kind)
            .filter_map(|i| i.filter.as_any().downcast_mut::<T>())
            .collect()
    }

    /// Typed access to the first live instance of a filter kind (tools).
    pub fn instance_as<T: 'static>(&mut self, kind: &str) -> Option<&mut T> {
        self.instances
            .iter_mut()
            .flatten()
            .find(|i| &*i.kind == kind)
            .and_then(|i| i.filter.as_any().downcast_mut::<T>())
    }

    /// Accounting for one instance.
    pub fn instance_stats(&self, id: usize) -> Option<InstanceStats> {
        self.instances.get(id)?.as_ref().map(|i| i.stats)
    }

    // ------------------------------------------------------------------
    // The packet path.
    // ------------------------------------------------------------------

    /// Longest same-flow run dispatched as one batch. Bounds snapshot and
    /// flag storage and keeps teardown latency (a close observed mid-run
    /// takes effect at run end) to a small constant.
    pub const MAX_BATCH: usize = 64;

    /// Runs a packet through the filter queues. Returns the packets to
    /// forward: empty if dropped, the (possibly modified) packet plus any
    /// injected packets otherwise.
    ///
    /// Tunneled traffic is intercepted *inside* its encapsulation: a proxy
    /// co-located with a Mobile IP agent path (§5.1.1's "merge the
    /// interception point with the FA") services the inner stream and
    /// re-wraps the results in the original tunnel header.
    ///
    /// This is the scalar entry point: it dispatches a depth-1 batch
    /// through the same core as [`FilterEngine::process_batch`], so the
    /// two paths cannot diverge.
    pub fn process(
        &mut self,
        now: SimTime,
        rng: &mut SmallRng,
        metrics: &dyn MetricsSource,
        pkt: Packet,
    ) -> Vec<Packet> {
        if let IpPayload::Encap(inner) = pkt.body {
            let outer = pkt.ip;
            let outs = self.process(now, rng, metrics, *inner);
            return outs
                .into_iter()
                .map(|p| Packet {
                    ip: outer.clone(),
                    body: IpPayload::Encap(Box::new(p)),
                })
                .collect();
        }
        let Some(key) = StreamKey::of_packet(&pkt) else {
            self.totals.pkts += 1;
            self.obs.inc("engine", "engine.pkts");
            return vec![pkt]; // Non-keyed traffic passes through.
        };
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.batch.push(pkt);
        let mut out = Vec::new();
        let mut dropped = Vec::new();
        self.dispatch_run(now, rng, metrics, key, &mut scratch, &mut out, &mut dropped);
        self.scratch = scratch;
        out
    }

    /// Runs a sequence of packets through the filter queues, coalescing
    /// contiguous same-flow packets into per-flow runs (capped at
    /// [`FilterEngine::MAX_BATCH`]) so the flow lookup, the member-queue
    /// resolution, and each filter's virtual dispatch are paid once per
    /// run instead of once per packet.
    ///
    /// `input` is drained. Surviving and injected packets are appended to
    /// `out` in the scalar emission order (each packet followed by the
    /// injections it caused, runs in arrival order); input packets that
    /// produced *no* output (dropped, nothing injected) are appended to
    /// `dropped` so callers can trace them. Both buffers are appended to,
    /// never cleared, and keep their capacity across calls.
    pub fn process_batch(
        &mut self,
        now: SimTime,
        rng: &mut SmallRng,
        metrics: &dyn MetricsSource,
        input: &mut Vec<Packet>,
        out: &mut Vec<Packet>,
        dropped: &mut Vec<Packet>,
    ) {
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut run_key: Option<StreamKey> = None;
        for pkt in input.drain(..) {
            if let IpPayload::Encap(_) = pkt.body {
                // Tunneled traffic re-enters through the scalar path (the
                // inner stream is serviced recursively); flush first so
                // relative order holds, and hand the scratch back for the
                // reentrant call.
                if let Some(k) = run_key.take() {
                    self.dispatch_run(now, rng, metrics, k, &mut scratch, out, dropped);
                }
                self.scratch = scratch;
                let original = pkt.clone();
                let outs = self.process(now, rng, metrics, pkt);
                scratch = std::mem::take(&mut self.scratch);
                if outs.is_empty() {
                    dropped.push(original);
                } else {
                    out.extend(outs);
                }
                continue;
            }
            let Some(key) = StreamKey::of_packet(&pkt) else {
                if let Some(k) = run_key.take() {
                    self.dispatch_run(now, rng, metrics, k, &mut scratch, out, dropped);
                }
                self.totals.pkts += 1;
                self.obs.inc("engine", "engine.pkts");
                out.push(pkt);
                continue;
            };
            if run_key.is_some_and(|k| k != key) || scratch.batch.len() >= Self::MAX_BATCH {
                let k = run_key.take().expect("non-empty run has a key");
                self.dispatch_run(now, rng, metrics, k, &mut scratch, out, dropped);
            }
            // Connection-lifecycle packets end the run: SYN may instantiate
            // filters and FIN/RST may tear the stream down, and both must
            // be visible to the very next packet's queue resolution, as in
            // the scalar path.
            let lifecycle = matches!(&pkt.body, IpPayload::Tcp(seg)
                if seg.flags.syn() || seg.flags.fin() || seg.flags.rst());
            run_key = Some(key);
            scratch.batch.push(pkt);
            if lifecycle {
                let k = run_key.take().expect("just set");
                self.dispatch_run(now, rng, metrics, k, &mut scratch, out, dropped);
            }
        }
        if let Some(k) = run_key.take() {
            self.dispatch_run(now, rng, metrics, k, &mut scratch, out, dropped);
        }
        self.scratch = scratch;
    }

    /// The dispatch core: runs one same-flow run through the in/out filter
    /// queues. Byte-for-byte equivalent to the historical scalar loop at
    /// depth 1; at depth n it amortizes the flow lookup and virtual
    /// dispatch and enforces capabilities per packet exactly as before.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_run(
        &mut self,
        now: SimTime,
        rng: &mut SmallRng,
        metrics: &dyn MetricsSource,
        key: StreamKey,
        scratch: &mut EngineScratch,
        out: &mut Vec<Packet>,
        dropped_out: &mut Vec<Packet>,
    ) {
        let n = scratch.batch.len();
        debug_assert!(n > 0, "dispatch_run needs a non-empty run");
        self.totals.pkts += n as u64;
        self.totals.batches += 1;
        self.totals.batch_pkts += n as u64;
        if self.obs.is_enabled() {
            self.obs.add("engine", "engine.pkts", n as u64);
            self.obs.inc("engine", "engine.batches");
            self.obs.add("engine", "engine.batch_pkts", n as u64);
        }
        let members = self.queue_members(now, rng, metrics, key);
        if members.is_empty() {
            scratch.batch.dropped.clear();
            out.append(&mut scratch.batch.pkts);
            return;
        }
        // Host wall-clock dispatch latency; `wall.`-prefixed keys never
        // reach the deterministic export.
        let wall_start = self.obs.is_enabled().then(std::time::Instant::now);

        scratch.injections.clear();
        scratch.modified.clear();
        scratch.modified.resize(n, false);
        let mut live = n;
        let closed_keys: Vec<StreamKey>;
        {
            let mut ctx = FilterCtx::new(now, rng, metrics);
            // In pass: highest priority first, read-only, whole run per
            // filter. Out-only filters (`observes_in` false) skip the call
            // and its drain bookkeeping entirely; their `pkts_seen` still
            // counts every packet of the run.
            for &m in members.iter() {
                let Some(inst) = self.instances[m].as_mut() else {
                    continue;
                };
                inst.stats.pkts_seen += n as u64;
                if !inst.wants_in {
                    continue;
                }
                inst.filter.on_in_batch(&mut ctx, key, scratch.batch.pkts());
                if !ctx.timers.is_empty() {
                    Self::drain_ctx_timers(&mut self.pending_timers, m, &mut ctx);
                }
                if !ctx.events.is_empty() || !ctx.counts.is_empty() || !ctx.gauge_sets.is_empty() {
                    let kind = Arc::clone(&self.instances[m].as_ref().expect("inst").kind);
                    self.drain_ctx(now, &kind, &mut ctx);
                }
                if !ctx.service_requests.is_empty() {
                    self.drain_service_requests(&mut ctx);
                }
            }
            // Out pass: lowest priority first; higher priorities override.
            for &m in members.iter().rev() {
                if live == 0 {
                    break;
                }
                let Some(inst) = self.instances[m].as_mut() else {
                    continue;
                };
                let caps = inst.caps;
                // Snapshot every live packet for the capability diff.
                scratch.snaps.clear();
                let mut visited_bytes = 0u64;
                for i in 0..n {
                    if !scratch.batch.dropped[i] {
                        let snap = PacketSnap::capture(&scratch.batch.pkts[i]);
                        visited_bytes += snap.payload_len() as u64;
                        scratch.snaps.push((i as u32, snap));
                    }
                }
                let visited = scratch.snaps.len() as u64;
                inst.filter.on_out_batch(&mut ctx, key, &mut scratch.batch);
                // Per-packet capability diff; stats accumulate locally and
                // land on the instance in one re-borrow below.
                let mut f_modified = 0u64;
                let mut f_bytes_removed = 0u64;
                let mut f_bytes_added = 0u64;
                let mut f_violations = 0u64;
                let mut f_dropped = 0u64;
                for (i, snap) in scratch.snaps.drain(..) {
                    let i = i as usize;
                    let pkt = &mut scratch.batch.pkts[i];
                    let before_payload = snap.payload_len();
                    let (hdr_changed, payload_changed) = snap.diff(pkt);
                    let violated = (hdr_changed && !caps.allows(Capabilities::MODIFY_HEADERS))
                        || (payload_changed && !caps.allows(Capabilities::MODIFY_PAYLOAD));
                    if violated {
                        f_violations += 1;
                        *pkt = snap.restore();
                        let kind = &self.instances[m].as_ref().expect("inst").kind;
                        let line =
                            format!("engine: blocked unauthorized modification by {kind} on {key}");
                        self.log.push(line);
                    } else if hdr_changed || payload_changed {
                        f_modified += 1;
                        scratch.modified[i] = true;
                        let after_len = payload_len(pkt);
                        if after_len < before_payload {
                            f_bytes_removed += (before_payload - after_len) as u64;
                        } else {
                            f_bytes_added += (after_len - before_payload) as u64;
                        }
                    }
                }
                // Apply the filter's drop requests under its capability.
                for r in 0..scratch.batch.drop_requests.len() {
                    let i = scratch.batch.drop_requests[r] as usize;
                    if scratch.batch.dropped[i] {
                        continue;
                    }
                    if caps.allows(Capabilities::DROP) {
                        scratch.batch.dropped[i] = true;
                        live -= 1;
                        f_dropped += 1;
                    } else {
                        f_violations += 1;
                        let kind = &self.instances[m].as_ref().expect("inst").kind;
                        let line = format!("engine: blocked unauthorized drop by {kind} on {key}");
                        self.log.push(line);
                    }
                }
                scratch.batch.drop_requests.clear();
                // Attribute injections to this filter for the cap check.
                let mut f_injected = 0u64;
                if !ctx.injections.is_empty() {
                    let cnt = ctx.injections.len() as u64;
                    if caps.allows(Capabilities::INJECT) {
                        f_injected = cnt;
                        self.totals.injected += cnt;
                        scratch.injections.append(&mut ctx.injections);
                    } else {
                        f_violations += cnt;
                        ctx.injections.clear();
                        let kind = &self.instances[m].as_ref().expect("inst").kind;
                        let line =
                            format!("engine: blocked unauthorized injection by {kind} on {key}");
                        self.log.push(line);
                    }
                }
                let inst = self.instances[m].as_mut().expect("inst");
                inst.stats.pkts_modified += f_modified;
                inst.stats.bytes_removed += f_bytes_removed;
                inst.stats.bytes_added += f_bytes_added;
                inst.stats.pkts_dropped += f_dropped;
                inst.stats.pkts_injected += f_injected;
                inst.stats.violations += f_violations;
                if self.obs.is_enabled() {
                    let kind = Arc::clone(&inst.kind);
                    self.obs.add(&kind, "filter.pkts", visited);
                    self.obs.add(&kind, "filter.bytes", visited_bytes);
                    if f_dropped > 0 {
                        self.obs.add(&kind, "filter.drops", f_dropped);
                    }
                    if f_modified > 0 {
                        self.obs.add(&kind, "filter.modified", f_modified);
                    }
                    if f_injected > 0 {
                        self.obs.add(&kind, "filter.injected", f_injected);
                        self.obs.add("engine", "engine.injected", f_injected);
                    }
                    if f_violations > 0 {
                        self.obs.add(&kind, "filter.violations", f_violations);
                    }
                }
                if !ctx.timers.is_empty() {
                    Self::drain_ctx_timers(&mut self.pending_timers, m, &mut ctx);
                }
                if !ctx.events.is_empty() || !ctx.counts.is_empty() || !ctx.gauge_sets.is_empty() {
                    let kind = Arc::clone(&self.instances[m].as_ref().expect("inst").kind);
                    self.drain_ctx(now, &kind, &mut ctx);
                }
                if !ctx.service_requests.is_empty() {
                    self.drain_service_requests(&mut ctx);
                }
            }
            // Stream-closed requests are handled after the ctx borrow ends.
            closed_keys = ctx.closed_streams.drain(..).collect();
        }
        for k in closed_keys {
            self.teardown_stream(now, rng, metrics, k);
        }
        for i in 0..n {
            if scratch.batch.dropped[i] {
                self.totals.drops += 1;
                self.obs.inc("engine", "engine.drops");
            } else if scratch.modified[i] {
                self.totals.modified += 1;
                self.obs.inc("engine", "engine.modified");
            }
        }
        // Assembly: each surviving packet followed by the injections it
        // caused (stable by source index, preserving the out-pass filter
        // visit order within a packet — the scalar emission order).
        scratch.injections.sort_by_key(|&(i, _)| i);
        let mut inj = scratch.injections.drain(..).peekable();
        for (i, pkt) in scratch.batch.pkts.drain(..).enumerate() {
            if scratch.batch.dropped[i] {
                let mut had_injections = false;
                while inj.peek().is_some_and(|&(j, _)| j as usize == i) {
                    out.push(inj.next().expect("peeked").1);
                    had_injections = true;
                }
                if !had_injections {
                    dropped_out.push(pkt);
                } // else: the packet itself is consumed, injections carry on.
            } else {
                out.push(pkt);
                while inj.peek().is_some_and(|&(j, _)| j as usize == i) {
                    out.push(inj.next().expect("peeked").1);
                }
            }
        }
        debug_assert!(inj.next().is_none(), "injection tagged past the run");
        drop(inj);
        scratch.batch.dropped.clear();
        if let Some(t0) = wall_start {
            self.obs.hist(
                "engine",
                "wall.dispatch_ns",
                t0.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            );
        }
    }

    fn drain_ctx_timers(
        pending: &mut Vec<(comma_netsim::time::SimDuration, u64)>,
        inst_id: usize,
        ctx: &mut FilterCtx<'_>,
    ) {
        for (delay, token) in ctx.timers.drain(..) {
            let enc = ((inst_id as u64) << 32) | (token & 0xffff_ffff);
            pending.push((delay, enc));
        }
    }

    /// Drains a filter context's structured output: events become proxy-log
    /// lines (and flight-recorder entries when obs is enabled), counts and
    /// gauges land in the registry under the filter-kind scope.
    fn drain_ctx(&mut self, now: SimTime, kind: &str, ctx: &mut FilterCtx<'_>) {
        let enabled = self.obs.is_enabled();
        for (name, fields) in ctx.events.drain(..) {
            let mut line = String::from(name);
            for (k, v) in &fields {
                line.push(' ');
                line.push_str(k);
                line.push('=');
                line.push_str(&v.to_string());
            }
            self.log.push(format!("{kind}: {line}"));
            if enabled {
                self.obs.event(now.as_micros(), kind, name, fields);
            }
        }
        for (key, n) in ctx.counts.drain(..) {
            if enabled {
                self.obs.add(kind, key, n);
            }
        }
        for (key, v) in ctx.gauge_sets.drain(..) {
            if enabled {
                self.obs.gauge(kind, key, v);
            }
        }
    }

    fn drain_service_requests(&mut self, ctx: &mut FilterCtx<'_>) {
        let requests: Vec<_> = ctx.service_requests.drain(..).collect();
        for (wild, filter, args) in requests {
            if let Err(e) = self.register(wild, &filter, args) {
                self.log
                    .push(format!("engine: service request rejected: {e}"));
            }
        }
    }

    /// Timer requests produced by the last `process`/`on_timer` call; the
    /// owning node must arm these on its own timer facility.
    pub fn take_pending_timers(&mut self) -> Vec<(comma_netsim::time::SimDuration, u64)> {
        std::mem::take(&mut self.pending_timers)
    }

    /// Dispatches a filter timer (token as produced by
    /// [`FilterEngine::take_pending_timers`]). Returns packets to inject.
    pub fn on_timer(
        &mut self,
        now: SimTime,
        rng: &mut SmallRng,
        metrics: &dyn MetricsSource,
        token: u64,
    ) -> Vec<Packet> {
        let inst_id = (token >> 32) as usize;
        let user = token & 0xffff_ffff;
        let Some(slot) = self.instances.get_mut(inst_id) else {
            return Vec::new();
        };
        let Some(inst) = slot.as_mut() else {
            return Vec::new();
        };
        let mut ctx = FilterCtx::new(now, rng, metrics);
        inst.filter.on_timer(&mut ctx, user);
        let mut out = Vec::new();
        let inj: Vec<Packet> = ctx.injections.drain(..).map(|(_, p)| p).collect();
        let mut injected = 0u64;
        if !inj.is_empty() {
            if inst.caps.allows(Capabilities::INJECT) {
                inst.stats.pkts_injected += inj.len() as u64;
                self.totals.injected += inj.len() as u64;
                injected = inj.len() as u64;
                out.extend(inj);
            } else {
                inst.stats.violations += inj.len() as u64;
            }
        }
        let kind = inst.kind.clone();
        if injected > 0 {
            self.obs.add(&kind, "filter.injected", injected);
            self.obs.add("engine", "engine.injected", injected);
        }
        Self::drain_ctx_timers(&mut self.pending_timers, inst_id, &mut ctx);
        self.drain_ctx(now, &kind, &mut ctx);
        self.drain_service_requests(&mut ctx);
        let closed: Vec<StreamKey> = ctx.closed_streams.drain(..).collect();
        drop(ctx);
        for k in closed {
            self.teardown_stream(now, rng, metrics, k);
        }
        out
    }

    /// The per-packet flow lookup. Fast path: one FNV hash probe and a
    /// refcount bump on the cached member list. The wild-card registration
    /// scan and instantiation run only when the flow is new or the
    /// registration set changed since the flow was stamped.
    fn queue_members(
        &mut self,
        now: SimTime,
        rng: &mut SmallRng,
        metrics: &dyn MetricsSource,
        key: StreamKey,
    ) -> Rc<[usize]> {
        if let Some(entry) = self.flows.get(key) {
            if entry.generation == self.reg_generation {
                return Rc::clone(&entry.members);
            }
        }
        self.expand_queue(now, rng, metrics, key);
        Rc::clone(&self.flows.get(key).expect("flow entry").members)
    }

    fn expand_queue(
        &mut self,
        now: SimTime,
        rng: &mut SmallRng,
        metrics: &dyn MetricsSource,
        key: StreamKey,
    ) {
        // A launcher-style filter may register further services during its
        // insertion method; loop until the registration set is stable (the
        // applied-set check guarantees progress).
        for _round in 0..10 {
            let pending: Vec<Registration> = self
                .registrations
                .iter()
                .flatten()
                .filter(|reg| {
                    reg.wild.matches(key)
                        && !self
                            .flows
                            .get(key)
                            .map(|entry| entry.applied.contains(&reg.id))
                            .unwrap_or(false)
                })
                .cloned()
                .collect();
            if pending.is_empty() {
                break;
            }
            for reg in pending {
                match self.catalog.instantiate(&reg.filter, &reg.args) {
                    Ok(mut filter) => {
                        let mut ctx = FilterCtx::new(now, rng, metrics);
                        let keys = filter.insert(&mut ctx, key);
                        let inst_id = self.instances.len();
                        Self::drain_ctx_timers(&mut self.pending_timers, inst_id, &mut ctx);
                        self.drain_ctx(now, &reg.filter, &mut ctx);
                        self.drain_service_requests(&mut ctx);
                        let priority = filter.priority();
                        let caps = filter.capabilities();
                        // Catalog name (services may share a Filter type).
                        let kind = self.intern_kind(&reg.filter);
                        let wants_in = filter.observes_in();
                        self.instances.push(Some(Instance {
                            filter,
                            kind,
                            registration: reg.id,
                            keys: keys.iter().copied().collect(),
                            priority,
                            caps,
                            wants_in,
                            stats: InstanceStats::default(),
                        }));
                        for k in keys {
                            let entry = self.flows.entry(k);
                            let mut rebuilt: Vec<usize> = entry.members.to_vec();
                            rebuilt.push(inst_id);
                            entry.applied.insert(reg.id);
                            // In-method order: descending priority, then
                            // insertion order.
                            let instances = &self.instances;
                            rebuilt.sort_by(|&a, &b| {
                                let pa = instances[a].as_ref().map(|i| i.priority);
                                let pb = instances[b].as_ref().map(|i| i.priority);
                                pb.cmp(&pa).then(a.cmp(&b))
                            });
                            self.flows.entry(k).members = Rc::from(rebuilt);
                        }
                    }
                    Err(e) => {
                        self.log
                            .push(format!("engine: cannot instantiate {}: {e}", reg.filter));
                        // Mark applied so we do not retry per packet.
                        self.flows.entry(key).applied.insert(reg.id);
                    }
                }
            }
        }
        // Stamp the flow (creating it if nothing matched) so the next
        // packet takes the fast path.
        self.flows.entry(key).generation = self.reg_generation;
    }

    /// Tears down the filter queues for `key` and its reverse; instances
    /// left with no keys are removed.
    pub fn teardown_stream(
        &mut self,
        now: SimTime,
        rng: &mut SmallRng,
        metrics: &dyn MetricsSource,
        key: StreamKey,
    ) {
        for k in [key, key.reverse()] {
            let Some(entry) = self.flows.remove(k) else {
                continue;
            };
            for &m in entry.members.iter() {
                if let Some(inst) = self.instances[m].as_mut() {
                    inst.keys.remove(&k);
                    if inst.keys.is_empty() {
                        self.remove_instance(now, rng, metrics, m);
                    }
                }
            }
        }
        self.log
            .push(format!("engine: stream {key} closed; filters removed"));
    }

    /// Report body (§5.3): each loaded filter followed by the keys it
    /// services (wild-card registrations and live stream bindings).
    pub fn report_lines(&self, filter: Option<&str>) -> Vec<String> {
        let mut lines = Vec::new();
        let names: Vec<String> = match filter {
            Some(f) => {
                if self.catalog.is_loaded(f) {
                    vec![f.to_string()]
                } else {
                    return lines;
                }
            }
            None => self.catalog.loaded_names(),
        };
        for name in names {
            lines.push(name.clone());
            let mut keys: Vec<String> = Vec::new();
            for reg in self.registrations.iter().flatten() {
                if reg.filter == name && !reg.wild.is_exact() {
                    keys.push(reg.wild.to_string());
                }
            }
            for inst in self.instances.iter().flatten() {
                if *inst.kind == *name {
                    for k in &inst.keys {
                        keys.push(k.to_string());
                    }
                }
            }
            keys.dedup();
            for k in keys {
                lines.push(format!("\t{k}"));
            }
        }
        lines
    }
}

// Field added after the struct for readability of the main methods.
impl FilterEngine {
    /// Number of live filter instances.
    pub fn live_instances(&self) -> usize {
        self.instances.iter().flatten().count()
    }

    /// Deep-copies the engine for a world snapshot: catalog factories are
    /// shared (refcounted), filter instances clone through
    /// [`Filter::clone_filter`], flow/registration state clones plainly,
    /// and the dispatch scratch starts fresh. Fails, naming the filter
    /// kind, when an instance does not support cloning.
    pub fn try_clone(&self) -> Result<FilterEngine, String> {
        let mut instances = Vec::with_capacity(self.instances.len());
        for slot in &self.instances {
            instances.push(match slot {
                None => None,
                Some(inst) => {
                    let filter = inst.filter.clone_filter().ok_or_else(|| {
                        format!("filter {} does not implement clone_filter", inst.kind)
                    })?;
                    Some(Instance {
                        filter,
                        kind: inst.kind.clone(),
                        registration: inst.registration,
                        keys: inst.keys.clone(),
                        priority: inst.priority,
                        caps: inst.caps,
                        wants_in: inst.wants_in,
                        stats: inst.stats,
                    })
                }
            });
        }
        Ok(FilterEngine {
            catalog: self.catalog.clone(),
            registrations: self.registrations.clone(),
            reg_generation: self.reg_generation,
            instances,
            flows: self.flows.clone(),
            kinds: self.kinds.clone(),
            log: self.log.clone(),
            totals: self.totals,
            pending_timers: self.pending_timers.clone(),
            obs: self.obs.clone(),
            scratch: EngineScratch::default(),
        })
    }

    /// Folds behavior-relevant engine state — registration set, per-flow
    /// queue state, and every instance's [`Filter::state_digest`] — into a
    /// canonical world fingerprint. Counters and the diagnostic log are
    /// excluded.
    pub fn state_digest(&self, h: &mut comma_rt::digest::Fnv1a) {
        h.update_u64(self.reg_generation);
        for slot in self.registrations.iter().flatten() {
            h.update_u64(slot.id as u64);
            h.update(slot.wild.to_string());
            h.update(&*slot.filter);
        }
        // Instance slot order records packet-arrival history (wildcard
        // registrations spawn an instance when a stream's first packet
        // shows up), while per-packet processing selects instances by
        // stream key — so slot order is not behavior. Fold instances in
        // canonical (kind, keys) order so schedules that converge on the
        // same instance set hash equal regardless of spawn order.
        let mut inst_digests: Vec<(String, u64)> = self
            .instances
            .iter()
            .flatten()
            .map(|inst| {
                let mut key = inst.kind.to_string();
                let mut sub = comma_rt::digest::Fnv1a::new();
                sub.update(&*inst.kind);
                for k in &inst.keys {
                    let k = k.to_string();
                    key.push(' ');
                    key.push_str(&k);
                    sub.update(k);
                }
                inst.filter.state_digest(&mut sub);
                (key, sub.finish())
            })
            .collect();
        inst_digests.sort_unstable();
        for (_, d) in inst_digests {
            h.update_u64(d);
        }
        self.flows.state_digest(h);
        // Timer tokens name instances, and instance numbering is arrival
        // history too; the delay alone is the behavior-relevant part.
        for (delay, _token) in &self.pending_timers {
            h.update_u64(delay.as_micros());
        }
    }
}

fn payload_len(pkt: &Packet) -> usize {
    match &pkt.body {
        IpPayload::Tcp(seg) => seg.payload.len(),
        IpPayload::Udp(d) => d.payload.len(),
        _ => 0,
    }
}

/// Detects whether a payload was modified without reading untouched bytes:
/// same `Bytes` view (pointer + offset + length) means provably unchanged;
/// different lengths mean provably changed; only a *replaced* same-length
/// buffer falls back to an FNV-1a digest comparison.
fn payload_modified(before: &Bytes, after: &Bytes) -> bool {
    if before.ptr_eq(after) {
        return false;
    }
    if before.len() != after.len() {
        return true;
    }
    fnv1a(before) != fnv1a(after)
}

/// A cheap pre-`on_out` snapshot for capability enforcement: header fields
/// by value plus the payload's refcounted `Bytes` handle. Capturing never
/// deep-copies a payload (the old path cloned the whole packet once per
/// filter), and it carries enough to *restore* the packet when an
/// unauthorized modification must be rolled back.
enum PacketSnap {
    Tcp {
        ip: Ipv4Header,
        src_port: u16,
        dst_port: u16,
        seq: u32,
        ack: u32,
        flags: TcpFlags,
        window: u16,
        /// Empty on data segments, so cloning it does not allocate.
        options: Vec<TcpOption>,
        payload: Bytes,
    },
    Udp {
        ip: Ipv4Header,
        src_port: u16,
        dst_port: u16,
        payload: Bytes,
    },
    /// ICMP/Encap never reach the keyed dispatch loop (no [`StreamKey`]),
    /// but stay safe if that ever changes.
    Other(Box<Packet>),
}

impl PacketSnap {
    fn capture(pkt: &Packet) -> PacketSnap {
        match &pkt.body {
            IpPayload::Tcp(seg) => PacketSnap::Tcp {
                ip: pkt.ip.clone(),
                src_port: seg.src_port,
                dst_port: seg.dst_port,
                seq: seg.seq,
                ack: seg.ack,
                flags: seg.flags,
                window: seg.window,
                options: seg.options.clone(),
                payload: seg.payload.clone(),
            },
            IpPayload::Udp(dgram) => PacketSnap::Udp {
                ip: pkt.ip.clone(),
                src_port: dgram.src_port,
                dst_port: dgram.dst_port,
                payload: dgram.payload.clone(),
            },
            _ => PacketSnap::Other(Box::new(pkt.clone())),
        }
    }

    fn payload_len(&self) -> usize {
        match self {
            PacketSnap::Tcp { payload, .. } | PacketSnap::Udp { payload, .. } => payload.len(),
            PacketSnap::Other(pkt) => payload_len(pkt),
        }
    }

    /// Classifies what `on_out` did to the packet as (header changed,
    /// payload changed) — the capability-enforcement diff.
    fn diff(&self, after: &Packet) -> (bool, bool) {
        match (self, &after.body) {
            (
                PacketSnap::Tcp {
                    ip,
                    src_port,
                    dst_port,
                    seq,
                    ack,
                    flags,
                    window,
                    options,
                    payload,
                },
                IpPayload::Tcp(b),
            ) => {
                let hdr = *ip != after.ip
                    || *src_port != b.src_port
                    || *dst_port != b.dst_port
                    || *seq != b.seq
                    || *ack != b.ack
                    || *flags != b.flags
                    || *window != b.window
                    || options[..] != b.options[..];
                (hdr, payload_modified(payload, &b.payload))
            }
            (
                PacketSnap::Udp {
                    ip,
                    src_port,
                    dst_port,
                    payload,
                },
                IpPayload::Udp(b),
            ) => {
                let hdr =
                    *ip != after.ip || *src_port != b.src_port || *dst_port != b.dst_port;
                (hdr, payload_modified(payload, &b.payload))
            }
            (PacketSnap::Other(before), _) => {
                let changed = **before != *after;
                (changed, changed)
            }
            // The body variant itself was replaced: header and payload.
            _ => (true, true),
        }
    }

    /// Rebuilds the pre-`on_out` packet (unauthorized-modification
    /// rollback). Payload bytes are shared, not copied.
    fn restore(self) -> Packet {
        match self {
            PacketSnap::Tcp {
                ip,
                src_port,
                dst_port,
                seq,
                ack,
                flags,
                window,
                options,
                payload,
            } => Packet {
                ip,
                body: IpPayload::Tcp(TcpSegment {
                    src_port,
                    dst_port,
                    seq,
                    ack,
                    flags,
                    window,
                    options,
                    payload,
                }),
            },
            PacketSnap::Udp {
                ip,
                src_port,
                dst_port,
                payload,
            } => Packet {
                ip,
                body: IpPayload::Udp(UdpDatagram {
                    src_port,
                    dst_port,
                    payload,
                }),
            },
            PacketSnap::Other(pkt) => *pkt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_log_caps_retention_and_counts_dropped() {
        let mut log = EngineLog::new();
        log.set_max_entries(3);
        for i in 0..10 {
            log.push(format!("line {i}"));
        }
        assert_eq!(log.len(), 3, "retention is capped");
        assert_eq!(log.dropped(), 7, "shed lines are counted");
        assert_eq!(
            log.lines(),
            &["line 7".to_string(), "line 8".to_string(), "line 9".to_string()],
            "most-recent lines are kept, oldest shed first"
        );
        // Lowering the cap trims immediately.
        log.set_max_entries(1);
        assert_eq!(log.lines(), &["line 9".to_string()]);
        assert_eq!(log.dropped(), 9);
        // Deref keeps Vec-style call sites working.
        assert!(log.iter().any(|l| l.contains("line 9")));
    }

    #[test]
    fn engine_log_default_cap_bounds_violation_floods() {
        let mut log = EngineLog::new();
        for i in 0..(EngineLog::DEFAULT_MAX_ENTRIES + 500) {
            log.push(format!("engine: blocked unauthorized modification #{i}"));
        }
        assert_eq!(log.len(), EngineLog::DEFAULT_MAX_ENTRIES);
        assert_eq!(log.dropped(), 500);
    }

    #[test]
    fn payload_modified_is_identity_then_digest() {
        let a = Bytes::from(vec![1u8, 2, 3, 4]);
        let shared = a.clone();
        assert!(!payload_modified(&a, &shared), "same Arc: no digest needed");
        let equal_copy = Bytes::from(vec![1u8, 2, 3, 4]);
        assert!(
            !payload_modified(&a, &equal_copy),
            "distinct allocation, equal bytes: digest match"
        );
        let changed = Bytes::from(vec![1u8, 2, 3, 5]);
        assert!(payload_modified(&a, &changed));
        let longer = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        assert!(payload_modified(&a, &longer), "length change short-circuits");
    }
}
