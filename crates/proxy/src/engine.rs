//! The filtering mechanism (Fig 5.1/5.2): stream registry, filter pool,
//! per-key in/out filter queues, and filter accounting.

use std::collections::{BTreeMap, BTreeSet};

use comma_netsim::packet::{IpPayload, Packet};
use comma_netsim::time::SimTime;
use comma_obs::Obs;
use comma_rt::SmallRng;

use crate::filter::{Capabilities, Filter, FilterCtx, MetricsSource, Priority, Verdict};
use crate::key::{StreamKey, WildKey};

/// Factory producing filter instances from `add`-command arguments.
pub type FilterFactory = Box<dyn Fn(&[String]) -> Result<Box<dyn Filter>, String>>;

/// The filter pool: factories known to the proxy ("compiled in" or loadable
/// from the repository), and the set currently loaded.
#[derive(Default)]
pub struct FilterCatalog {
    factories: BTreeMap<String, FilterFactory>,
    loaded: BTreeSet<String>,
}

impl FilterCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        FilterCatalog::default()
    }

    /// Registers a factory under `name` (the filter repository).
    pub fn register(&mut self, name: impl Into<String>, factory: FilterFactory) {
        self.factories.insert(name.into(), factory);
    }

    /// Registers a factory and immediately loads it (a "standard set"
    /// filter compiled into the SP, §5.2).
    pub fn register_loaded(&mut self, name: impl Into<String>, factory: FilterFactory) {
        let name = name.into();
        self.loaded.insert(name.clone());
        self.factories.insert(name, factory);
    }

    /// Loads a filter library file; returns the registered filter name.
    /// The file stem (e.g. `rdrop` from `/lib/rdrop.so`) selects the
    /// factory.
    pub fn load(&mut self, library_file: &str) -> Option<String> {
        let stem = library_file
            .rsplit('/')
            .next()
            .unwrap_or(library_file)
            .split('.')
            .next()
            .unwrap_or(library_file)
            .to_string();
        if self.factories.contains_key(&stem) {
            self.loaded.insert(stem.clone());
            Some(stem)
        } else {
            None
        }
    }

    /// Unloads a filter library file; returns whether it was loaded.
    pub fn unload(&mut self, library_file: &str) -> bool {
        let stem = library_file
            .rsplit('/')
            .next()
            .unwrap_or(library_file)
            .split('.')
            .next()
            .unwrap_or(library_file);
        self.loaded.remove(stem)
    }

    /// Returns `true` if `name` is loaded and instantiable.
    pub fn is_loaded(&self, name: &str) -> bool {
        self.loaded.contains(name)
    }

    /// Names of loaded filters, sorted.
    pub fn loaded_names(&self) -> Vec<String> {
        self.loaded.iter().cloned().collect()
    }

    fn instantiate(&self, name: &str, args: &[String]) -> Result<Box<dyn Filter>, String> {
        if !self.loaded.contains(name) {
            return Err(format!("filter {name} not loaded"));
        }
        let factory = self
            .factories
            .get(name)
            .ok_or_else(|| format!("no factory {name}"))?;
        factory(args)
    }
}

/// A service request in the stream registry: apply `filter` to streams
/// matching `wild`.
#[derive(Debug, Clone)]
pub struct Registration {
    /// Registry slot.
    pub id: usize,
    /// Key pattern.
    pub wild: WildKey,
    /// Filter name.
    pub filter: String,
    /// Instantiation arguments.
    pub args: Vec<String>,
}

/// Per-instance accounting (§5.2 "filter accounting").
#[derive(Clone, Copy, Debug, Default)]
pub struct InstanceStats {
    /// Packets inspected by the in method.
    pub pkts_seen: u64,
    /// Packets modified by the out method.
    pub pkts_modified: u64,
    /// Packets dropped by the out method.
    pub pkts_dropped: u64,
    /// Packets injected.
    pub pkts_injected: u64,
    /// Payload bytes removed (positive) or added (negative net effect is
    /// folded into `bytes_added`).
    pub bytes_removed: u64,
    /// Payload bytes added.
    pub bytes_added: u64,
    /// Capability violations blocked by the engine.
    pub violations: u64,
}

struct Instance {
    filter: Box<dyn Filter>,
    kind: String,
    registration: usize,
    keys: BTreeSet<StreamKey>,
    priority: Priority,
    caps: Capabilities,
    stats: InstanceStats,
}

#[derive(Default)]
struct QueueState {
    /// Instance ids, sorted by descending priority (in-method order).
    members: Vec<usize>,
    /// Registrations already expanded for this key.
    applied: BTreeSet<usize>,
}

/// Engine-level totals.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Packets offered to the engine.
    pub pkts: u64,
    /// Packets dropped by filters.
    pub drops: u64,
    /// Packets modified by filters.
    pub modified: u64,
    /// Packets injected by filters.
    pub injected: u64,
}

/// Snapshot of one filter instance for monitoring tools.
#[derive(Clone, Debug)]
pub struct InstanceInfo {
    /// Instance slot.
    pub id: usize,
    /// Filter name.
    pub kind: String,
    /// Keys currently serviced.
    pub keys: Vec<StreamKey>,
    /// Priority.
    pub priority: Priority,
    /// Accounting counters.
    pub stats: InstanceStats,
}

/// The Service Proxy filtering engine.
pub struct FilterEngine {
    /// The filter pool.
    pub catalog: FilterCatalog,
    registrations: Vec<Option<Registration>>,
    instances: Vec<Option<Instance>>,
    queues: BTreeMap<StreamKey, QueueState>,
    /// Diagnostic log lines emitted by filters and the engine.
    pub log: Vec<String>,
    /// Engine totals.
    pub totals: EngineStats,
    pending_timers: Vec<(comma_netsim::time::SimDuration, u64)>,
    /// Observability handle (disabled by default). When enabled, the engine
    /// keeps per-filter packet/byte/drop counters (scope = filter kind),
    /// forwards filter events to the flight recorder, and samples dispatch
    /// wall-clock latency (`wall.`-prefixed, never exported).
    obs: Obs,
}

impl FilterEngine {
    /// Creates an engine over a catalog.
    pub fn new(catalog: FilterCatalog) -> Self {
        FilterEngine {
            catalog,
            registrations: Vec::new(),
            instances: Vec::new(),
            queues: BTreeMap::new(),
            log: Vec::new(),
            totals: EngineStats::default(),
            pending_timers: Vec::new(),
            obs: Obs::new(),
        }
    }

    /// Shares an observability handle with the engine (typically the
    /// simulator's). Replaces the default disabled handle.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The engine's observability handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Adds a service registration: apply `filter` (with `args`) to streams
    /// matching `wild`. Fails if the filter is not loaded.
    pub fn register(
        &mut self,
        wild: WildKey,
        filter: &str,
        args: Vec<String>,
    ) -> Result<usize, String> {
        if !self.catalog.is_loaded(filter) {
            return Err(format!("filter {filter} not loaded"));
        }
        let id = self.registrations.len();
        self.registrations.push(Some(Registration {
            id,
            wild,
            filter: filter.to_string(),
            args,
        }));
        // Existing queues matching the new registration pick it up on their
        // next packet (applied-set check); nothing to do eagerly.
        Ok(id)
    }

    /// Removes registrations of `filter` whose pattern equals `wild`, and
    /// tears down the instances they created. Returns how many
    /// registrations were removed.
    pub fn deregister(
        &mut self,
        now: SimTime,
        rng: &mut SmallRng,
        metrics: &dyn MetricsSource,
        filter: &str,
        wild: WildKey,
    ) -> usize {
        let mut removed_regs = Vec::new();
        for slot in &mut self.registrations {
            if let Some(reg) = slot {
                if reg.filter == filter && reg.wild == wild {
                    removed_regs.push(reg.id);
                    *slot = None;
                }
            }
        }
        for &reg_id in &removed_regs {
            let victims: Vec<usize> = self
                .instances
                .iter()
                .enumerate()
                .filter_map(|(i, slot)| {
                    slot.as_ref()
                        .filter(|inst| inst.registration == reg_id)
                        .map(|_| i)
                })
                .collect();
            for inst_id in victims {
                self.remove_instance(now, rng, metrics, inst_id);
            }
            for q in self.queues.values_mut() {
                q.applied.remove(&reg_id);
            }
        }
        removed_regs.len()
    }

    fn remove_instance(
        &mut self,
        now: SimTime,
        rng: &mut SmallRng,
        metrics: &dyn MetricsSource,
        inst_id: usize,
    ) {
        let Some(mut inst) = self.instances[inst_id].take() else {
            return;
        };
        for q in self.queues.values_mut() {
            q.members.retain(|&m| m != inst_id);
        }
        let mut ctx = FilterCtx::new(now, rng, metrics);
        inst.filter.on_removed(&mut ctx);
        self.drain_ctx(now, &inst.kind, &mut ctx);
    }

    /// Current registrations.
    pub fn registrations(&self) -> Vec<Registration> {
        self.registrations.iter().flatten().cloned().collect()
    }

    /// Monitoring snapshot of live filter instances.
    pub fn instance_infos(&self) -> Vec<InstanceInfo> {
        self.instances
            .iter()
            .enumerate()
            .filter_map(|(id, slot)| {
                slot.as_ref().map(|inst| InstanceInfo {
                    id,
                    kind: inst.kind.clone(),
                    keys: inst.keys.iter().copied().collect(),
                    priority: inst.priority,
                    stats: inst.stats,
                })
            })
            .collect()
    }

    /// Active stream keys with the filters applied to each, in queue order.
    pub fn streams(&self) -> Vec<(StreamKey, Vec<String>)> {
        self.queues
            .iter()
            .map(|(key, q)| {
                let names = q
                    .members
                    .iter()
                    .filter_map(|&m| self.instances[m].as_ref().map(|i| i.kind.clone()))
                    .collect();
                (*key, names)
            })
            .collect()
    }

    /// Typed access to the first live instance of a filter kind (tools).
    pub fn instance_as<T: 'static>(&mut self, kind: &str) -> Option<&mut T> {
        self.instances
            .iter_mut()
            .flatten()
            .find(|i| i.kind == kind)
            .and_then(|i| i.filter.as_any().downcast_mut::<T>())
    }

    /// Accounting for one instance.
    pub fn instance_stats(&self, id: usize) -> Option<InstanceStats> {
        self.instances.get(id)?.as_ref().map(|i| i.stats)
    }

    // ------------------------------------------------------------------
    // The packet path.
    // ------------------------------------------------------------------

    /// Runs a packet through the filter queues. Returns the packets to
    /// forward: empty if dropped, the (possibly modified) packet plus any
    /// injected packets otherwise.
    ///
    /// Tunneled traffic is intercepted *inside* its encapsulation: a proxy
    /// co-located with a Mobile IP agent path (§5.1.1's "merge the
    /// interception point with the FA") services the inner stream and
    /// re-wraps the results in the original tunnel header.
    pub fn process(
        &mut self,
        now: SimTime,
        rng: &mut SmallRng,
        metrics: &dyn MetricsSource,
        mut pkt: Packet,
    ) -> Vec<Packet> {
        if let IpPayload::Encap(inner) = pkt.body {
            let outer = pkt.ip;
            let outs = self.process(now, rng, metrics, *inner);
            return outs
                .into_iter()
                .map(|p| Packet {
                    ip: outer.clone(),
                    body: IpPayload::Encap(Box::new(p)),
                })
                .collect();
        }
        self.totals.pkts += 1;
        self.obs.inc("engine", "engine.pkts");
        let Some(key) = StreamKey::of_packet(&pkt) else {
            return vec![pkt]; // Non-keyed traffic passes through.
        };
        self.ensure_queue(now, rng, metrics, key);
        let members: Vec<usize> = self
            .queues
            .get(&key)
            .map(|q| q.members.clone())
            .unwrap_or_default();
        if members.is_empty() {
            return vec![pkt];
        }
        // Host wall-clock dispatch latency; `wall.`-prefixed keys never
        // reach the deterministic export.
        let wall_start = self.obs.is_enabled().then(std::time::Instant::now);

        let mut out: Vec<Packet> = Vec::new();
        let mut dropped = false;
        let mut any_modified = false;
        let closed_keys: Vec<StreamKey>;
        {
            let mut ctx = FilterCtx::new(now, rng, metrics);
            // In pass: highest priority first, read-only.
            for &m in &members {
                let Some(inst) = self.instances[m].as_mut() else {
                    continue;
                };
                inst.stats.pkts_seen += 1;
                inst.filter.on_in(&mut ctx, key, &pkt);
                let kind = self.instances[m].as_ref().expect("inst").kind.clone();
                Self::drain_ctx_timers(&mut self.pending_timers, m, &mut ctx);
                self.drain_ctx(now, &kind, &mut ctx);
                self.drain_service_requests(&mut ctx);
            }
            // Out pass: lowest priority first; higher priorities override.
            for &m in members.iter().rev() {
                if dropped {
                    break;
                }
                let Some(inst) = self.instances[m].as_mut() else {
                    continue;
                };
                let before = pkt.clone();
                let before_payload = payload_len(&before);
                let verdict = inst.filter.on_out(&mut ctx, key, &mut pkt);
                let caps = inst.caps;
                let (hdr_changed, payload_changed) = diff_kind(&before, &pkt);
                let mut was_modified = false;
                let mut was_dropped = false;
                let mut violations = 0u64;
                let mut injected = 0u64;
                let mut violated = false;
                if hdr_changed && !caps.allows(Capabilities::MODIFY_HEADERS) {
                    violated = true;
                }
                if payload_changed && !caps.allows(Capabilities::MODIFY_PAYLOAD) {
                    violated = true;
                }
                if violated {
                    inst.stats.violations += 1;
                    violations += 1;
                    let kind = inst.kind.clone();
                    pkt = before;
                    self.log.push(format!(
                        "engine: blocked unauthorized modification by {kind} on {key}"
                    ));
                } else if hdr_changed || payload_changed {
                    inst.stats.pkts_modified += 1;
                    any_modified = true;
                    was_modified = true;
                    let after_len = payload_len(&pkt);
                    if after_len < before_payload {
                        inst.stats.bytes_removed += (before_payload - after_len) as u64;
                    } else {
                        inst.stats.bytes_added += (after_len - before_payload) as u64;
                    }
                }
                if verdict == Verdict::Drop {
                    if caps.allows(Capabilities::DROP) {
                        inst.stats.pkts_dropped += 1;
                        dropped = true;
                        was_dropped = true;
                    } else {
                        inst.stats.violations += 1;
                        violations += 1;
                        let kind = inst.kind.clone();
                        self.log.push(format!(
                            "engine: blocked unauthorized drop by {kind} on {key}"
                        ));
                    }
                }
                // Attribute injections to this filter for the cap check.
                let inj: Vec<Packet> = ctx.injections.drain(..).collect();
                if !inj.is_empty() {
                    let inst = self.instances[m].as_mut().expect("inst");
                    if inst.caps.allows(Capabilities::INJECT) {
                        inst.stats.pkts_injected += inj.len() as u64;
                        self.totals.injected += inj.len() as u64;
                        injected = inj.len() as u64;
                        out.extend(inj);
                    } else {
                        inst.stats.violations += inj.len() as u64;
                        violations += inj.len() as u64;
                        self.log.push(format!(
                            "engine: blocked unauthorized injection by {} on {key}",
                            self.instances[m].as_ref().expect("inst").kind
                        ));
                    }
                }
                let kind = self.instances[m].as_ref().expect("inst").kind.clone();
                if self.obs.is_enabled() {
                    self.obs.inc(&kind, "filter.pkts");
                    self.obs.add(&kind, "filter.bytes", before_payload as u64);
                    if was_dropped {
                        self.obs.inc(&kind, "filter.drops");
                    }
                    if was_modified {
                        self.obs.inc(&kind, "filter.modified");
                    }
                    if injected > 0 {
                        self.obs.add(&kind, "filter.injected", injected);
                        self.obs.add("engine", "engine.injected", injected);
                    }
                    if violations > 0 {
                        self.obs.add(&kind, "filter.violations", violations);
                    }
                }
                Self::drain_ctx_timers(&mut self.pending_timers, m, &mut ctx);
                self.drain_ctx(now, &kind, &mut ctx);
                self.drain_service_requests(&mut ctx);
            }
            // Stream-closed requests are handled after the ctx borrow ends.
            closed_keys = ctx.closed_streams.drain(..).collect();
        }
        for k in closed_keys {
            self.teardown_stream(now, rng, metrics, k);
        }
        if dropped {
            self.totals.drops += 1;
            self.obs.inc("engine", "engine.drops");
        } else {
            if any_modified {
                self.totals.modified += 1;
                self.obs.inc("engine", "engine.modified");
            }
            out.insert(0, pkt);
        }
        if let Some(t0) = wall_start {
            self.obs.hist(
                "engine",
                "wall.dispatch_ns",
                t0.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            );
        }
        out
    }

    fn drain_ctx_timers(
        pending: &mut Vec<(comma_netsim::time::SimDuration, u64)>,
        inst_id: usize,
        ctx: &mut FilterCtx<'_>,
    ) {
        for (delay, token) in ctx.timers.drain(..) {
            let enc = ((inst_id as u64) << 32) | (token & 0xffff_ffff);
            pending.push((delay, enc));
        }
    }

    /// Drains a filter context's structured output: events become proxy-log
    /// lines (and flight-recorder entries when obs is enabled), counts and
    /// gauges land in the registry under the filter-kind scope.
    fn drain_ctx(&mut self, now: SimTime, kind: &str, ctx: &mut FilterCtx<'_>) {
        let enabled = self.obs.is_enabled();
        for (name, fields) in ctx.events.drain(..) {
            let line = if name == "log" && fields.len() == 1 && fields[0].0 == "msg" {
                // The log() shim: render back to the original raw string.
                fields[0].1.to_string()
            } else {
                let mut s = String::from(name);
                for (k, v) in &fields {
                    s.push(' ');
                    s.push_str(k);
                    s.push('=');
                    s.push_str(&v.to_string());
                }
                s
            };
            self.log.push(format!("{kind}: {line}"));
            if enabled {
                self.obs.event(now.as_micros(), kind, name, fields);
            }
        }
        for (key, n) in ctx.counts.drain(..) {
            if enabled {
                self.obs.add(kind, key, n);
            }
        }
        for (key, v) in ctx.gauge_sets.drain(..) {
            if enabled {
                self.obs.gauge(kind, key, v);
            }
        }
    }

    fn drain_service_requests(&mut self, ctx: &mut FilterCtx<'_>) {
        let requests: Vec<_> = ctx.service_requests.drain(..).collect();
        for (wild, filter, args) in requests {
            if let Err(e) = self.register(wild, &filter, args) {
                self.log
                    .push(format!("engine: service request rejected: {e}"));
            }
        }
    }

    /// Timer requests produced by the last `process`/`on_timer` call; the
    /// owning node must arm these on its own timer facility.
    pub fn take_pending_timers(&mut self) -> Vec<(comma_netsim::time::SimDuration, u64)> {
        std::mem::take(&mut self.pending_timers)
    }

    /// Dispatches a filter timer (token as produced by
    /// [`FilterEngine::take_pending_timers`]). Returns packets to inject.
    pub fn on_timer(
        &mut self,
        now: SimTime,
        rng: &mut SmallRng,
        metrics: &dyn MetricsSource,
        token: u64,
    ) -> Vec<Packet> {
        let inst_id = (token >> 32) as usize;
        let user = token & 0xffff_ffff;
        let Some(slot) = self.instances.get_mut(inst_id) else {
            return Vec::new();
        };
        let Some(inst) = slot.as_mut() else {
            return Vec::new();
        };
        let mut ctx = FilterCtx::new(now, rng, metrics);
        inst.filter.on_timer(&mut ctx, user);
        let mut out = Vec::new();
        let inj: Vec<Packet> = ctx.injections.drain(..).collect();
        let mut injected = 0u64;
        if !inj.is_empty() {
            if inst.caps.allows(Capabilities::INJECT) {
                inst.stats.pkts_injected += inj.len() as u64;
                self.totals.injected += inj.len() as u64;
                injected = inj.len() as u64;
                out.extend(inj);
            } else {
                inst.stats.violations += inj.len() as u64;
            }
        }
        let kind = inst.kind.clone();
        if injected > 0 {
            self.obs.add(&kind, "filter.injected", injected);
            self.obs.add("engine", "engine.injected", injected);
        }
        Self::drain_ctx_timers(&mut self.pending_timers, inst_id, &mut ctx);
        self.drain_ctx(now, &kind, &mut ctx);
        self.drain_service_requests(&mut ctx);
        let closed: Vec<StreamKey> = ctx.closed_streams.drain(..).collect();
        drop(ctx);
        for k in closed {
            self.teardown_stream(now, rng, metrics, k);
        }
        out
    }

    fn ensure_queue(
        &mut self,
        now: SimTime,
        rng: &mut SmallRng,
        metrics: &dyn MetricsSource,
        key: StreamKey,
    ) {
        // A launcher-style filter may register further services during its
        // insertion method; loop until the registration set is stable (the
        // applied-set check guarantees progress).
        for _round in 0..10 {
            let pending: Vec<Registration> = self
                .registrations
                .iter()
                .flatten()
                .filter(|reg| {
                    reg.wild.matches(key)
                        && !self
                            .queues
                            .get(&key)
                            .map(|q| q.applied.contains(&reg.id))
                            .unwrap_or(false)
                })
                .cloned()
                .collect();
            if pending.is_empty() {
                break;
            }
            for reg in pending {
                match self.catalog.instantiate(&reg.filter, &reg.args) {
                    Ok(mut filter) => {
                        let mut ctx = FilterCtx::new(now, rng, metrics);
                        let keys = filter.insert(&mut ctx, key);
                        let inst_id = self.instances.len();
                        Self::drain_ctx_timers(&mut self.pending_timers, inst_id, &mut ctx);
                        self.drain_ctx(now, &reg.filter, &mut ctx);
                        self.drain_service_requests(&mut ctx);
                        let priority = filter.priority();
                        let caps = filter.capabilities();
                        let kind = reg.filter.clone(); // Catalog name (services may share a Filter type).
                        self.instances.push(Some(Instance {
                            filter,
                            kind,
                            registration: reg.id,
                            keys: keys.iter().copied().collect(),
                            priority,
                            caps,
                            stats: InstanceStats::default(),
                        }));
                        for k in keys {
                            let q = self.queues.entry(k).or_default();
                            q.members.push(inst_id);
                            q.applied.insert(reg.id);
                            // In-method order: descending priority, then
                            // insertion order.
                            let instances = &self.instances;
                            q.members.sort_by(|&a, &b| {
                                let pa = instances[a].as_ref().map(|i| i.priority);
                                let pb = instances[b].as_ref().map(|i| i.priority);
                                pb.cmp(&pa).then(a.cmp(&b))
                            });
                        }
                    }
                    Err(e) => {
                        self.log
                            .push(format!("engine: cannot instantiate {}: {e}", reg.filter));
                        // Mark applied so we do not retry per packet.
                        self.queues.entry(key).or_default().applied.insert(reg.id);
                    }
                }
            }
        }
        // Ensure the key has a queue entry even if instantiation failed.
        self.queues.entry(key).or_default();
    }

    /// Tears down the filter queues for `key` and its reverse; instances
    /// left with no keys are removed.
    pub fn teardown_stream(
        &mut self,
        now: SimTime,
        rng: &mut SmallRng,
        metrics: &dyn MetricsSource,
        key: StreamKey,
    ) {
        for k in [key, key.reverse()] {
            let Some(q) = self.queues.remove(&k) else {
                continue;
            };
            for m in q.members {
                if let Some(inst) = self.instances[m].as_mut() {
                    inst.keys.remove(&k);
                    if inst.keys.is_empty() {
                        self.remove_instance(now, rng, metrics, m);
                    }
                }
            }
        }
        self.log
            .push(format!("engine: stream {key} closed; filters removed"));
    }

    /// Report body (§5.3): each loaded filter followed by the keys it
    /// services (wild-card registrations and live stream bindings).
    pub fn report_lines(&self, filter: Option<&str>) -> Vec<String> {
        let mut lines = Vec::new();
        let names: Vec<String> = match filter {
            Some(f) => {
                if self.catalog.is_loaded(f) {
                    vec![f.to_string()]
                } else {
                    return lines;
                }
            }
            None => self.catalog.loaded_names(),
        };
        for name in names {
            lines.push(name.clone());
            let mut keys: Vec<String> = Vec::new();
            for reg in self.registrations.iter().flatten() {
                if reg.filter == name && !reg.wild.is_exact() {
                    keys.push(reg.wild.to_string());
                }
            }
            for inst in self.instances.iter().flatten() {
                if inst.kind == name {
                    for k in &inst.keys {
                        keys.push(k.to_string());
                    }
                }
            }
            keys.dedup();
            for k in keys {
                lines.push(format!("\t{k}"));
            }
        }
        lines
    }
}

// Field added after the struct for readability of the main methods.
impl FilterEngine {
    /// Number of live filter instances.
    pub fn live_instances(&self) -> usize {
        self.instances.iter().flatten().count()
    }
}

fn payload_len(pkt: &Packet) -> usize {
    match &pkt.body {
        IpPayload::Tcp(seg) => seg.payload.len(),
        IpPayload::Udp(d) => d.payload.len(),
        _ => 0,
    }
}

/// Classifies the difference between two packets as header and/or payload
/// changes (capability enforcement).
fn diff_kind(before: &Packet, after: &Packet) -> (bool, bool) {
    if before == after {
        return (false, false);
    }
    let payload_changed = match (&before.body, &after.body) {
        (IpPayload::Tcp(a), IpPayload::Tcp(b)) => a.payload != b.payload,
        (IpPayload::Udp(a), IpPayload::Udp(b)) => a.payload != b.payload,
        _ => true,
    };
    let header_changed = if payload_changed {
        // Compare everything except the payload.
        let mut b2 = before.clone();
        let mut a2 = after.clone();
        match (&mut b2.body, &mut a2.body) {
            (IpPayload::Tcp(x), IpPayload::Tcp(y)) => {
                x.payload = comma_rt::Bytes::new();
                y.payload = comma_rt::Bytes::new();
            }
            (IpPayload::Udp(x), IpPayload::Udp(y)) => {
                x.payload = comma_rt::Bytes::new();
                y.payload = comma_rt::Bytes::new();
            }
            _ => {}
        }
        b2 != a2
    } else {
        true
    };
    (header_changed, payload_changed)
}
