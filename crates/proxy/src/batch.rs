//! Per-flow packet batches: the unit the redesigned dispatch path hands
//! to out-methods.
//!
//! The engine coalesces contiguous same-flow packets into one
//! [`PacketBatch`], resolves the flow and its member-filter queue once,
//! and runs each filter across the whole run
//! ([`crate::filter::Filter::on_out_batch`]). Filters mutate packets in
//! place and *request* drops; the engine applies the requests after each
//! filter so capability enforcement (Chapter 9) stays engine-side exactly
//! as in the scalar path. The batch's backing storage lives in the
//! engine's scratch arena and is recycled run to run, so steady state is
//! allocation-free at batch granularity.

use comma_netsim::packet::Packet;

/// A contiguous run of same-flow packets moving through the out-pass.
#[derive(Default)]
pub struct PacketBatch {
    pub(crate) pkts: Vec<Packet>,
    /// Parallel to `pkts`: packets already dropped by an earlier filter in
    /// this run. Filters must skip these.
    pub(crate) dropped: Vec<bool>,
    /// Indices whose drop was requested by the filter currently running;
    /// the engine drains this after each filter and enforces
    /// [`crate::filter::Capabilities::DROP`].
    pub(crate) drop_requests: Vec<u32>,
}

impl PacketBatch {
    /// Number of packets in the run (dropped ones included).
    pub fn len(&self) -> usize {
        self.pkts.len()
    }

    /// Whether the run is empty.
    pub fn is_empty(&self) -> bool {
        self.pkts.is_empty()
    }

    /// The packet at `i` (dropped or not).
    pub fn pkt(&self, i: usize) -> &Packet {
        &self.pkts[i]
    }

    /// Mutable access to the packet at `i`. Modifications are diffed
    /// against the filter's declared capabilities by the engine, exactly
    /// as in the scalar `on_out` path.
    pub fn pkt_mut(&mut self, i: usize) -> &mut Packet {
        &mut self.pkts[i]
    }

    /// All packets in the run, in arrival order.
    pub fn pkts(&self) -> &[Packet] {
        &self.pkts
    }

    /// Whether the packet at `i` was dropped by an earlier filter. Batch
    /// out-methods must skip dropped slots (the scalar path never shows a
    /// dropped packet to the remaining filters).
    pub fn is_dropped(&self, i: usize) -> bool {
        self.dropped[i]
    }

    /// Requests that the packet at `i` be dropped — the batch equivalent
    /// of returning [`crate::filter::Verdict::Drop`]. The engine applies
    /// the request after the filter returns, subject to the filter's
    /// [`crate::filter::Capabilities::DROP`] capability.
    pub fn request_drop(&mut self, i: usize) {
        self.drop_requests.push(i as u32);
    }

    pub(crate) fn push(&mut self, pkt: Packet) {
        self.pkts.push(pkt);
        self.dropped.push(false);
    }
}
