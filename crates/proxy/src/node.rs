//! The Service Proxy node: a router with the filtering engine spliced into
//! its forwarding path (Fig 5.1), placed at the wired/wireless bottleneck.

use std::any::Any;

use comma_netsim::addr::Ipv4Addr;
use comma_netsim::node::{IfaceId, Node, NodeCtx};
use comma_netsim::packet::Packet;
use comma_netsim::routing::{forward_step, RoutingTable};
use comma_netsim::time::SimTime;
use comma_netsim::trace::DropReason;
use comma_rt::SmallRng;
use comma_rt::SeedableRng;

use crate::command;
use crate::engine::FilterEngine;
use crate::filter::{MetricsSource, NullMetrics};

/// The Comma Service Proxy (SP).
///
/// Every packet routed through the node passes the packet-interception
/// module and the filter queues before re-injection onto the network. The
/// SP command interface (§5.3) is exposed via [`ServiceProxy::exec`].
pub struct ServiceProxy {
    name: String,
    addrs: Vec<Ipv4Addr>,
    /// Forwarding table.
    pub table: RoutingTable,
    /// The filtering engine.
    pub engine: FilterEngine,
    metrics: Box<dyn MetricsSource>,
    rng: SmallRng,
    /// Packets forwarded (post-filtering).
    pub forwarded: u64,
    /// Packets dropped by filters.
    pub filtered_out: u64,
    /// Reusable output buffer for batched delivery (capacity persists
    /// across dispatches; steady state allocates nothing).
    batch_out: Vec<Packet>,
    /// Reusable dropped-packet buffer for batched delivery.
    batch_dropped: Vec<Packet>,
}

impl ServiceProxy {
    /// Creates a proxy with the given routing table and engine; `seed`
    /// drives the deterministic randomness stream used by filters.
    pub fn new(
        name: impl Into<String>,
        addrs: Vec<Ipv4Addr>,
        table: RoutingTable,
        engine: FilterEngine,
        seed: u64,
    ) -> Self {
        ServiceProxy {
            name: name.into(),
            addrs,
            table,
            engine,
            metrics: Box::new(NullMetrics),
            rng: SmallRng::seed_from_u64(seed ^ 0x5350_5350),
            forwarded: 0,
            filtered_out: 0,
            batch_out: Vec::new(),
            batch_dropped: Vec::new(),
        }
    }

    /// Installs an EEM-backed metrics source for adaptive filters.
    pub fn set_metrics(&mut self, metrics: Box<dyn MetricsSource>) {
        self.metrics = metrics;
    }

    /// Shares an observability handle with the filtering engine (typically
    /// the simulator's; see `comma_obs::Obs`).
    pub fn set_obs(&mut self, obs: comma_obs::Obs) {
        self.engine.set_obs(obs);
    }

    /// Executes one SP console command (§5.3.1) and returns its output.
    pub fn exec(&mut self, now: SimTime, line: &str) -> String {
        command::execute(
            &mut self.engine,
            now,
            &mut self.rng,
            self.metrics.as_ref(),
            line,
        )
    }

    fn forward(&mut self, ctx: &mut NodeCtx<'_>, mut pkt: Packet) {
        if let Some(iface) = forward_step(ctx, &self.table, &mut pkt) {
            self.forwarded += 1;
            ctx.send(iface, pkt);
        }
    }

    fn arm_pending_timers(&mut self, ctx: &mut NodeCtx<'_>) {
        for (delay, token) in self.engine.take_pending_timers() {
            ctx.set_timer_after(delay, token);
        }
    }
}

impl Node for ServiceProxy {
    fn name(&self) -> &str {
        &self.name
    }

    fn addresses(&self) -> Vec<Ipv4Addr> {
        self.addrs.clone()
    }

    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, _iface: IfaceId, pkt: Packet) {
        if self.addrs.contains(&pkt.ip.dst) {
            return; // Console traffic terminates here.
        }
        let summary = pkt.summary();
        let outs = self
            .engine
            .process(ctx.now, &mut self.rng, self.metrics.as_ref(), pkt);
        if outs.is_empty() {
            self.filtered_out += 1;
            ctx.trace
                .drop_pkt(ctx.now, ctx.node, DropReason::Filter, || summary);
        }
        for out in outs {
            self.forward(ctx, out);
        }
        self.arm_pending_timers(ctx);
    }

    fn on_packets(&mut self, ctx: &mut NodeCtx<'_>, _iface: IfaceId, pkts: &mut Vec<Packet>) {
        // Console traffic terminates here, exactly as in the scalar path.
        pkts.retain(|p| !self.addrs.contains(&p.ip.dst));
        if pkts.is_empty() {
            return;
        }
        let mut out = std::mem::take(&mut self.batch_out);
        let mut dropped = std::mem::take(&mut self.batch_dropped);
        self.engine.process_batch(
            ctx.now,
            &mut self.rng,
            self.metrics.as_ref(),
            pkts,
            &mut out,
            &mut dropped,
        );
        // A packet the engine consumed without emitting anything (no
        // survivors, no injections) counts as filtered out, matching the
        // scalar `outs.is_empty()` accounting.
        for pkt in dropped.drain(..) {
            self.filtered_out += 1;
            ctx.trace
                .drop_pkt(ctx.now, ctx.node, DropReason::Filter, || pkt.summary());
        }
        for pkt in out.drain(..) {
            self.forward(ctx, pkt);
        }
        self.batch_out = out;
        self.batch_dropped = dropped;
        self.arm_pending_timers(ctx);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        let outs = self
            .engine
            .on_timer(ctx.now, &mut self.rng, self.metrics.as_ref(), token);
        for out in outs {
            self.forward(ctx, out);
        }
        self.arm_pending_timers(ctx);
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }

    fn clone_node(&self) -> Option<Box<dyn Node>> {
        Some(Box::new(ServiceProxy {
            name: self.name.clone(),
            addrs: self.addrs.clone(),
            table: self.table.clone(),
            engine: self.engine.try_clone().ok()?,
            metrics: self.metrics.clone_metrics()?,
            rng: self.rng.clone(),
            forwarded: self.forwarded,
            filtered_out: self.filtered_out,
            batch_out: Vec::new(),
            batch_dropped: Vec::new(),
        }))
    }

    fn state_digest(&self, h: &mut comma_rt::digest::Fnv1a) {
        for w in self.rng.state_words() {
            h.update_u64(w);
        }
        self.engine.state_digest(h);
    }
}
