//! Stream keys and wild-card keys (§5.2).
//!
//! A key is the ordered quadruple (source address, source port,
//! destination address, destination port); streams are directional, and
//! most have an associated reverse stream. Wild-card keys leave portions
//! blank (`0.0.0.0` / port `0`) to match families of streams.

use std::fmt;
use std::str::FromStr;

use comma_netsim::addr::Ipv4Addr;
use comma_netsim::packet::{IpPayload, Packet};

/// A fully specified, directional stream key.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StreamKey {
    /// Source address.
    pub src: Ipv4Addr,
    /// Source port.
    pub sport: u16,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Destination port.
    pub dport: u16,
}

impl StreamKey {
    /// Creates a key.
    pub fn new(src: Ipv4Addr, sport: u16, dst: Ipv4Addr, dport: u16) -> Self {
        StreamKey {
            src,
            sport,
            dst,
            dport,
        }
    }

    /// The key of the stream flowing in the opposite direction.
    pub fn reverse(self) -> StreamKey {
        StreamKey {
            src: self.dst,
            sport: self.dport,
            dst: self.src,
            dport: self.sport,
        }
    }

    /// Extracts the key of a TCP packet, if it carries one.
    pub fn of_packet(pkt: &Packet) -> Option<StreamKey> {
        match &pkt.body {
            IpPayload::Tcp(seg) => Some(StreamKey {
                src: pkt.ip.src,
                sport: seg.src_port,
                dst: pkt.ip.dst,
                dport: seg.dst_port,
            }),
            IpPayload::Udp(dgram) => Some(StreamKey {
                src: pkt.ip.src,
                sport: dgram.src_port,
                dst: pkt.ip.dst,
                dport: dgram.dst_port,
            }),
            _ => None,
        }
    }
}

impl fmt::Display for StreamKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} -> {} {}",
            self.src, self.sport, self.dst, self.dport
        )
    }
}

/// A wild-card key: `None` portions match anything (§5.2).
///
/// # Examples
///
/// ```
/// use comma_proxy::key::{StreamKey, WildKey};
///
/// // Match every stream bound for any port on the mobile host.
/// let wild: WildKey = "0.0.0.0 0 11.11.10.10 0".parse().unwrap();
/// let key: StreamKey = "11.11.10.99 7 11.11.10.10 1169".parse().unwrap();
/// assert!(wild.matches(key));
/// assert!(!wild.matches(key.reverse()));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct WildKey {
    /// Source address to match, if specified.
    pub src: Option<Ipv4Addr>,
    /// Source port to match, if specified.
    pub sport: Option<u16>,
    /// Destination address to match, if specified.
    pub dst: Option<Ipv4Addr>,
    /// Destination port to match, if specified.
    pub dport: Option<u16>,
}

impl WildKey {
    /// The key matching every stream.
    pub const ANY: WildKey = WildKey {
        src: None,
        sport: None,
        dst: None,
        dport: None,
    };

    /// Creates the wild-card form of an exact key.
    pub fn exact(key: StreamKey) -> WildKey {
        WildKey {
            src: Some(key.src),
            sport: Some(key.sport),
            dst: Some(key.dst),
            dport: Some(key.dport),
        }
    }

    /// Returns `true` if every specified portion matches `key`.
    pub fn matches(self, key: StreamKey) -> bool {
        self.src.is_none_or(|a| a == key.src)
            && self.sport.is_none_or(|p| p == key.sport)
            && self.dst.is_none_or(|a| a == key.dst)
            && self.dport.is_none_or(|p| p == key.dport)
    }

    /// Returns `true` if this key has no blank portions.
    pub fn is_exact(self) -> bool {
        self.src.is_some() && self.sport.is_some() && self.dst.is_some() && self.dport.is_some()
    }

    /// Converts to an exact key if fully specified.
    pub fn to_exact(self) -> Option<StreamKey> {
        Some(StreamKey {
            src: self.src?,
            sport: self.sport?,
            dst: self.dst?,
            dport: self.dport?,
        })
    }
}

impl From<StreamKey> for WildKey {
    fn from(key: StreamKey) -> WildKey {
        WildKey::exact(key)
    }
}

impl fmt::Display for WildKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let src = self.src.unwrap_or(Ipv4Addr::UNSPECIFIED);
        let dst = self.dst.unwrap_or(Ipv4Addr::UNSPECIFIED);
        write!(
            f,
            "{} {} -> {} {}",
            src,
            self.sport.unwrap_or(0),
            dst,
            self.dport.unwrap_or(0)
        )
    }
}

/// Error parsing a key from the SP command syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyParseError(pub String);

impl fmt::Display for KeyParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid key: {}", self.0)
    }
}

impl std::error::Error for KeyParseError {}

fn parse_parts(s: &str) -> Result<(Ipv4Addr, u16, Ipv4Addr, u16), KeyParseError> {
    // Accept both "a p b q" and "a p -> b q".
    let cleaned = s.replace("->", " ");
    let parts: Vec<&str> = cleaned.split_whitespace().collect();
    if parts.len() != 4 {
        return Err(KeyParseError(s.to_string()));
    }
    let src = parts[0].parse().map_err(|_| KeyParseError(s.to_string()))?;
    let sport = parts[1].parse().map_err(|_| KeyParseError(s.to_string()))?;
    let dst = parts[2].parse().map_err(|_| KeyParseError(s.to_string()))?;
    let dport = parts[3].parse().map_err(|_| KeyParseError(s.to_string()))?;
    Ok((src, sport, dst, dport))
}

impl FromStr for StreamKey {
    type Err = KeyParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (src, sport, dst, dport) = parse_parts(s)?;
        Ok(StreamKey {
            src,
            sport,
            dst,
            dport,
        })
    }
}

impl FromStr for WildKey {
    type Err = KeyParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (src, sport, dst, dport) = parse_parts(s)?;
        Ok(WildKey {
            src: (!src.is_unspecified()).then_some(src),
            sport: (sport != 0).then_some(sport),
            dst: (!dst.is_unspecified()).then_some(dst),
            dport: (dport != 0).then_some(dport),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_thesis_format() {
        let key: StreamKey = "11.11.10.99 7 11.11.10.10 1169".parse().unwrap();
        assert_eq!(key.to_string(), "11.11.10.99 7 -> 11.11.10.10 1169");
        let wild: WildKey = "11.11.10.10 0 0.0.0.0 0".parse().unwrap();
        assert_eq!(wild.to_string(), "11.11.10.10 0 -> 0.0.0.0 0");
    }

    #[test]
    fn arrow_form_accepted() {
        let a: StreamKey = "1.2.3.4 5 -> 6.7.8.9 10".parse().unwrap();
        let b: StreamKey = "1.2.3.4 5 6.7.8.9 10".parse().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn reverse_roundtrips() {
        let key: StreamKey = "1.2.3.4 5 6.7.8.9 10".parse().unwrap();
        assert_eq!(key.reverse().reverse(), key);
        assert_ne!(key.reverse(), key);
    }

    #[test]
    fn wildcard_matching() {
        let key: StreamKey = "11.11.10.99 7 11.11.10.10 1169".parse().unwrap();
        let by_dst: WildKey = "0.0.0.0 0 11.11.10.10 0".parse().unwrap();
        let by_port: WildKey = "0.0.0.0 7 0.0.0.0 0".parse().unwrap();
        let exact = WildKey::exact(key);
        assert!(by_dst.matches(key));
        assert!(by_port.matches(key));
        assert!(exact.matches(key));
        assert!(!exact.matches(key.reverse()));
        assert!(WildKey::ANY.matches(key));
        assert!(exact.is_exact());
        assert!(!by_dst.is_exact());
        assert_eq!(exact.to_exact(), Some(key));
        assert_eq!(by_dst.to_exact(), None);
    }

    #[test]
    fn parse_errors() {
        assert!("1.2.3.4 5 6.7.8.9".parse::<StreamKey>().is_err());
        assert!("x 5 6.7.8.9 10".parse::<StreamKey>().is_err());
        assert!("1.2.3.4 99999 6.7.8.9 10".parse::<StreamKey>().is_err());
    }

    #[test]
    fn key_of_packet() {
        use comma_rt::Bytes;
        use comma_netsim::packet::{IcmpMessage, TcpFlags, TcpSegment, UdpDatagram};
        let src: Ipv4Addr = "1.1.1.1".parse().unwrap();
        let dst: Ipv4Addr = "2.2.2.2".parse().unwrap();
        let tcp = Packet::tcp(src, dst, TcpSegment::new(10, 20, 0, 0, TcpFlags::SYN));
        assert_eq!(
            StreamKey::of_packet(&tcp),
            Some(StreamKey::new(src, 10, dst, 20))
        );
        let udp = Packet::udp(
            src,
            dst,
            UdpDatagram {
                src_port: 3,
                dst_port: 4,
                payload: Bytes::new(),
            },
        );
        assert_eq!(
            StreamKey::of_packet(&udp),
            Some(StreamKey::new(src, 3, dst, 4))
        );
        let icmp = Packet::icmp(src, dst, IcmpMessage::RouterSolicitation);
        assert_eq!(StreamKey::of_packet(&icmp), None);
    }
}
