//! The filter abstraction: priorities, capabilities, the [`Filter`] trait
//! and the context filters act through.
//!
//! A filter contributes one *in* method (read-only inspection before any
//! modification) and one *out* method (modification) per key it binds
//! (§5.2, Fig 5.2). The engine enforces the declared [`Capabilities`],
//! making the trust discussion of Chapter 9 a checkable mechanism.

use std::any::Any;
use std::fmt;

use comma_netsim::packet::Packet;
use comma_netsim::time::{SimDuration, SimTime};
use comma_obs::FieldValue;
use comma_rt::SmallRng;

use crate::batch::PacketBatch;
use crate::key::StreamKey;

/// Filter priority (§5.2): high-priority filters read first and modify
/// last, letting them override lower-priority changes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Priority {
    /// Modifies first; every other filter may override it.
    Lowest,
    /// Below normal.
    Low,
    /// Default.
    Normal,
    /// Above normal.
    High,
    /// Reads first, modifies last (reserved for housekeeping filters).
    Highest,
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Priority::Lowest => "LOWEST",
            Priority::Low => "LOW",
            Priority::Normal => "NORMAL",
            Priority::High => "HIGH",
            Priority::Highest => "HIGHEST",
        };
        write!(f, "{s}")
    }
}

/// Capability set a filter declares; the engine rejects actions outside it
/// (Chapter 9).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Capabilities(pub u8);

impl Capabilities {
    /// May only observe packets.
    pub const READ_ONLY: Capabilities = Capabilities(0);
    /// May rewrite protocol header fields.
    pub const MODIFY_HEADERS: Capabilities = Capabilities(1);
    /// May rewrite payload bytes (implies resizing).
    pub const MODIFY_PAYLOAD: Capabilities = Capabilities(2);
    /// May drop packets.
    pub const DROP: Capabilities = Capabilities(4);
    /// May inject new packets.
    pub const INJECT: Capabilities = Capabilities(8);

    /// Union of two capability sets.
    pub const fn with(self, other: Capabilities) -> Capabilities {
        Capabilities(self.0 | other.0)
    }

    /// Returns `true` if all of `other`'s capabilities are present.
    pub const fn allows(self, other: Capabilities) -> bool {
        self.0 & other.0 == other.0
    }

    /// Full capabilities.
    pub const fn all() -> Capabilities {
        Capabilities(0xf)
    }
}

/// Result of an out-method invocation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Pass the (possibly modified) packet down the queue.
    Continue,
    /// Drop the packet (requires [`Capabilities::DROP`]).
    Drop,
}

/// Read access to execution-environment metrics for adaptive filters
/// (backed by the EEM; see the `comma-eem` crate).
pub trait MetricsSource {
    /// Returns the current value of a named variable, if known.
    fn get(&self, var: &str) -> Option<f64>;

    /// Deep copy for world snapshots. Sources that do not opt in (the
    /// default) make their proxy unsnapshottable.
    fn clone_metrics(&self) -> Option<Box<dyn MetricsSource>> {
        None
    }
}

/// A metrics source that knows nothing (the default).
pub struct NullMetrics;

impl MetricsSource for NullMetrics {
    fn get(&self, _var: &str) -> Option<f64> {
        None
    }

    fn clone_metrics(&self) -> Option<Box<dyn MetricsSource>> {
        Some(Box::new(NullMetrics))
    }
}

/// Context handed to filter methods.
pub struct FilterCtx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// Deterministic randomness stream.
    pub rng: &'a mut SmallRng,
    /// Execution-environment metrics (EEM view).
    pub metrics: &'a dyn MetricsSource,
    /// Index of the batch packet currently being visited; injections are
    /// tagged with it so the engine can slot them next to their source
    /// packet when a batch is reassembled into the output order.
    batch_cursor: u32,
    pub(crate) injections: Vec<(u32, Packet)>,
    pub(crate) timers: Vec<(SimDuration, u64)>,
    pub(crate) closed_streams: Vec<StreamKey>,
    pub(crate) events: Vec<(&'static str, Vec<(&'static str, FieldValue)>)>,
    pub(crate) counts: Vec<(&'static str, u64)>,
    pub(crate) gauge_sets: Vec<(&'static str, f64)>,
    pub(crate) service_requests: Vec<(crate::key::WildKey, String, Vec<String>)>,
}

impl<'a> FilterCtx<'a> {
    /// Creates a context (engine and test use).
    pub fn new(now: SimTime, rng: &'a mut SmallRng, metrics: &'a dyn MetricsSource) -> Self {
        FilterCtx {
            now,
            rng,
            metrics,
            batch_cursor: 0,
            injections: Vec::new(),
            timers: Vec::new(),
            closed_streams: Vec::new(),
            events: Vec::new(),
            counts: Vec::new(),
            gauge_sets: Vec::new(),
            service_requests: Vec::new(),
        }
    }

    /// Injects an additional packet onto the network (requires
    /// [`Capabilities::INJECT`]). In batch methods the injection is
    /// attributed to the packet at the current [batch
    /// cursor](FilterCtx::set_batch_cursor) and emitted right after it.
    pub fn inject(&mut self, pkt: Packet) {
        self.injections.push((self.batch_cursor, pkt));
    }

    /// Sets the batch cursor: the index of the packet the filter is
    /// currently visiting inside a batch method. Native
    /// [`Filter::on_in_batch`]/[`Filter::on_out_batch`] implementations
    /// must keep it current while looping so injections land next to the
    /// packet that caused them; outside batch dispatch it stays zero.
    pub fn set_batch_cursor(&mut self, idx: u32) {
        self.batch_cursor = idx;
    }

    /// Requests a timer callback to this filter instance after `delay`.
    /// `token` is returned in [`Filter::on_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.timers.push((delay, token));
    }

    /// Reports that the stream identified by `key` (and its reverse) has
    /// terminated; the engine tears down its filter queues.
    pub fn stream_closed(&mut self, key: StreamKey) {
        self.closed_streams.push(key);
    }

    /// Records a structured event, attributed to the invoking filter by the
    /// engine: it lands in the proxy log (rendered) *and* in the
    /// observability flight recorder (queryable) —
    /// `event("ooo_drop", vec![("seq", seq.into())])` can be filtered and
    /// counted where a formatted string cannot.
    pub fn event(&mut self, name: &'static str, fields: Vec<(&'static str, FieldValue)>) {
        self.events.push((name, fields));
    }

    /// Adds `n` to a registry counter scoped to the invoking filter's kind
    /// (e.g. `count("ttsf.acks_translated", 1)`).
    pub fn count(&mut self, key: &'static str, n: u64) {
        self.counts.push((key, n));
    }

    /// Sets a registry gauge scoped to the invoking filter's kind
    /// (e.g. `gauge("ttsf.editmap_records", map.records() as f64)`).
    pub fn gauge(&mut self, key: &'static str, v: f64) {
        self.gauge_sets.push((key, v));
    }

    /// Drains the injected packets (engine and test use).
    pub fn take_injections(&mut self) -> Vec<Packet> {
        self.injections.drain(..).map(|(_, pkt)| pkt).collect()
    }

    /// Drains the stream-closed requests (engine and test use).
    pub fn take_closed_streams(&mut self) -> Vec<StreamKey> {
        std::mem::take(&mut self.closed_streams)
    }

    /// Drains the queued service requests (engine and test use).
    pub fn take_service_requests(&mut self) -> Vec<(crate::key::WildKey, String, Vec<String>)> {
        std::mem::take(&mut self.service_requests)
    }

    /// Requests that an additional service be registered (the launcher
    /// filter's mechanism for attaching filters to newly observed streams).
    pub fn add_service(
        &mut self,
        wild: crate::key::WildKey,
        filter: impl Into<String>,
        args: Vec<String>,
    ) {
        self.service_requests.push((wild, filter.into(), args));
    }
}

/// A stream-service filter (§5.2).
///
/// One instance may service several keys: its insertion method returns the
/// set of keys to bind, and the engine calls the in/out methods with the
/// key the current packet matched.
pub trait Filter {
    /// Catalog name of this filter type (e.g. `"rdrop"`).
    fn kind(&self) -> &'static str;

    /// Queue priority.
    fn priority(&self) -> Priority;

    /// Declared capabilities, enforced by the engine.
    fn capabilities(&self) -> Capabilities;

    /// Insertion method: called once when a stream matching the filter's
    /// registration appears. Returns every key whose queues this instance
    /// joins — typically `key` itself and often `key.reverse()`.
    fn insert(&mut self, _ctx: &mut FilterCtx<'_>, key: StreamKey) -> Vec<StreamKey> {
        vec![key]
    }

    /// In method: read-only look at the packet before any modification.
    fn on_in(&mut self, _ctx: &mut FilterCtx<'_>, _key: StreamKey, _pkt: &Packet) {}

    /// Whether this filter participates in the read-only in-pass at all.
    /// The engine skips [`Filter::on_in`]/[`Filter::on_in_batch`] (and the
    /// associated per-run bookkeeping) for instances that return `false`,
    /// which is the hot-path default for out-only filters. A filter that
    /// implements either in method MUST return `true`; the answer is
    /// sampled once at instantiation and may not change over the
    /// instance's lifetime. `pkts_seen` accounting is unaffected.
    fn observes_in(&self) -> bool {
        true
    }

    /// Out method: may modify the packet (within capabilities) and decide
    /// its fate.
    fn on_out(&mut self, _ctx: &mut FilterCtx<'_>, _key: StreamKey, _pkt: &mut Packet) -> Verdict {
        Verdict::Continue
    }

    /// In method over a contiguous same-flow run of packets, in arrival
    /// order. The default visits each packet through [`Filter::on_in`], so
    /// scalar filters work unchanged; hot filters override it to amortize
    /// per-packet work (direction checks, state lookups) across the run.
    fn on_in_batch(&mut self, ctx: &mut FilterCtx<'_>, key: StreamKey, pkts: &[Packet]) {
        for (i, pkt) in pkts.iter().enumerate() {
            ctx.set_batch_cursor(i as u32);
            self.on_in(ctx, key, pkt);
        }
    }

    /// Out method over a contiguous same-flow run. The default visits each
    /// live packet through [`Filter::on_out`], translating a
    /// [`Verdict::Drop`] into [`PacketBatch::request_drop`]. Native
    /// implementations must skip [`PacketBatch::is_dropped`] slots and keep
    /// the [batch cursor](FilterCtx::set_batch_cursor) current while
    /// looping.
    fn on_out_batch(&mut self, ctx: &mut FilterCtx<'_>, key: StreamKey, batch: &mut PacketBatch) {
        for i in 0..batch.len() {
            if batch.is_dropped(i) {
                continue;
            }
            ctx.set_batch_cursor(i as u32);
            if self.on_out(ctx, key, batch.pkt_mut(i)) == Verdict::Drop {
                batch.request_drop(i);
            }
        }
    }

    /// A timer requested via [`FilterCtx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut FilterCtx<'_>, _token: u64) {}

    /// The engine is tearing down this instance (stream closed or service
    /// deleted).
    fn on_removed(&mut self, _ctx: &mut FilterCtx<'_>) {}

    /// Typed access for tools and tests.
    fn as_any(&mut self) -> &mut dyn Any;

    /// Deep copy for world snapshots
    /// ([`comma_netsim::sim::Simulator::snapshot`]). Filters that do not
    /// opt in (the default) make their engine — and the world —
    /// unsnapshottable.
    fn clone_filter(&self) -> Option<Box<dyn Filter>> {
        None
    }

    /// Folds *behavior-relevant* filter state (caches, edit maps,
    /// reassembly buffers — not counters) into a canonical world
    /// fingerprint. The default (empty) is sound only for stateless
    /// filters; a stateful filter that skips it blinds the model checker's
    /// visited-set to its state.
    fn state_digest(&self, _h: &mut comma_rt::digest::Fnv1a) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_ordering() {
        assert!(Priority::Highest > Priority::High);
        assert!(Priority::High > Priority::Normal);
        assert!(Priority::Normal > Priority::Low);
        assert!(Priority::Low > Priority::Lowest);
        assert_eq!(Priority::High.to_string(), "HIGH");
    }

    #[test]
    fn capability_algebra() {
        let caps = Capabilities::MODIFY_HEADERS.with(Capabilities::DROP);
        assert!(caps.allows(Capabilities::MODIFY_HEADERS));
        assert!(caps.allows(Capabilities::DROP));
        assert!(!caps.allows(Capabilities::MODIFY_PAYLOAD));
        assert!(Capabilities::all().allows(caps));
        assert!(caps.allows(Capabilities::READ_ONLY));
    }

    #[test]
    fn ctx_accumulates_requests() {
        use comma_netsim::packet::{IcmpMessage, Packet};
        use comma_rt::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(0);
        let metrics = NullMetrics;
        let mut ctx = FilterCtx::new(SimTime::ZERO, &mut rng, &metrics);
        ctx.set_timer(SimDuration::from_millis(10), 42);
        ctx.inject(Packet::icmp(
            "1.1.1.1".parse().unwrap(),
            "2.2.2.2".parse().unwrap(),
            IcmpMessage::RouterSolicitation,
        ));
        ctx.stream_closed("1.1.1.1 1 2.2.2.2 2".parse().unwrap());
        ctx.event("probe", vec![("seq", FieldValue::U64(7))]);
        ctx.count("pkts", 2);
        ctx.gauge("window", 4096.0);
        assert_eq!(ctx.timers.len(), 1);
        assert_eq!(ctx.injections.len(), 1);
        assert_eq!(ctx.closed_streams.len(), 1);
        assert_eq!(ctx.events.len(), 1);
        assert_eq!(ctx.events[0].0, "probe");
        assert_eq!(ctx.counts, vec![("pkts", 2)]);
        assert_eq!(ctx.gauge_sets, vec![("window", 4096.0)]);
    }

    #[test]
    fn injections_carry_the_batch_cursor() {
        use comma_netsim::packet::{IcmpMessage, Packet};
        use comma_rt::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(0);
        let metrics = NullMetrics;
        let mut ctx = FilterCtx::new(SimTime::ZERO, &mut rng, &metrics);
        let ping = || {
            Packet::icmp(
                "1.1.1.1".parse().unwrap(),
                "2.2.2.2".parse().unwrap(),
                IcmpMessage::RouterSolicitation,
            )
        };
        ctx.inject(ping()); // Cursor defaults to packet 0.
        ctx.set_batch_cursor(5);
        ctx.inject(ping());
        assert_eq!(ctx.injections[0].0, 0);
        assert_eq!(ctx.injections[1].0, 5);
        assert_eq!(ctx.take_injections().len(), 2);
        assert!(ctx.injections.is_empty());
    }
}
