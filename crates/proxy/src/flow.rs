//! The flow table: per-stream filter-queue state behind a deterministic
//! FNV-1a-hashed map.
//!
//! Transparent in-path proxies live or die by per-packet dispatch cost, so
//! the engine's per-flow state lookup must be O(1) and allocation-free.
//! Each entry caches:
//!
//! - the **member list** (instance ids in in-method order) as an
//!   `Rc<[usize]>`, so handing it to the dispatch loop is a refcount bump,
//!   never a `Vec` clone;
//! - a **generation stamp**: the engine bumps its registration generation
//!   on every `register`/`deregister`, and a flow whose stamp matches the
//!   engine's skips the wild-card registration scan entirely. The scan —
//!   and the member-list rebuild — happens only when the registration set
//!   actually changed (or the flow is new).

use std::collections::BTreeSet;
use std::rc::Rc;

use comma_rt::FnvHashMap;

use crate::key::StreamKey;

/// Cached queue state for one stream key.
#[derive(Clone, Debug)]
pub struct FlowEntry {
    /// Instance ids, sorted by descending priority (in-method order).
    /// Shared with the dispatch loop by refcount, rebuilt only when
    /// membership changes.
    pub members: Rc<[usize]>,
    /// Registration slots already expanded for this key.
    pub applied: BTreeSet<usize>,
    /// Engine registration generation this entry was last expanded
    /// against; a mismatch forces a re-scan on the next packet.
    pub generation: u64,
}

impl Default for FlowEntry {
    fn default() -> Self {
        FlowEntry {
            members: Rc::from(Vec::new()),
            applied: BTreeSet::new(),
            generation: 0,
        }
    }
}

/// The per-stream state table, keyed by [`StreamKey`] under deterministic
/// FNV-1a hashing (stateless — no per-process seed, so iteration order is
/// reproducible run to run; display paths still sort explicitly).
#[derive(Clone, Default)]
pub struct FlowTable {
    map: FnvHashMap<StreamKey, FlowEntry>,
}

impl FlowTable {
    /// Folds the table into a canonical fingerprint: entries visited in
    /// sorted key order (the FNV map's iteration order is seed-free but
    /// capacity-dependent, so it is not canonical across histories).
    pub fn state_digest(&self, h: &mut comma_rt::digest::Fnv1a) {
        let mut keys: Vec<&StreamKey> = self.map.keys().collect();
        keys.sort_unstable();
        for key in keys {
            let entry = &self.map[key];
            h.update(key.to_string());
            for m in entry.members.iter() {
                h.update_u64(*m as u64);
            }
            for a in &entry.applied {
                h.update_u64(*a as u64);
            }
            h.update_u64(entry.generation);
        }
    }

    /// Creates an empty table.
    pub fn new() -> Self {
        FlowTable::default()
    }

    /// Number of tracked flows.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// O(1) lookup of the cached member list for `key` (the per-packet
    /// fast path; a refcount bump, no allocation).
    pub fn members(&self, key: StreamKey) -> Option<Rc<[usize]>> {
        self.map.get(&key).map(|e| Rc::clone(&e.members))
    }

    /// Borrowing lookup.
    pub fn get(&self, key: StreamKey) -> Option<&FlowEntry> {
        self.map.get(&key)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: StreamKey) -> Option<&mut FlowEntry> {
        self.map.get_mut(&key)
    }

    /// Returns the entry for `key`, creating a default one if absent.
    pub fn entry(&mut self, key: StreamKey) -> &mut FlowEntry {
        self.map.entry(key).or_default()
    }

    /// Removes and returns the entry for `key`.
    pub fn remove(&mut self, key: StreamKey) -> Option<FlowEntry> {
        self.map.remove(&key)
    }

    /// Iterates over `(key, entry)` pairs in unspecified (but
    /// deterministic) order; sort on the key for display.
    pub fn iter(&self) -> impl Iterator<Item = (&StreamKey, &FlowEntry)> {
        self.map.iter()
    }

    /// Iterates mutably over entries.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut FlowEntry> {
        self.map.values_mut()
    }

    /// Rebuilds the member list of every entry containing `inst_id`
    /// without it (instance teardown).
    pub fn evict_instance(&mut self, inst_id: usize) {
        for entry in self.map.values_mut() {
            if entry.members.contains(&inst_id) {
                let rebuilt: Vec<usize> = entry
                    .members
                    .iter()
                    .copied()
                    .filter(|&m| m != inst_id)
                    .collect();
                entry.members = Rc::from(rebuilt);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u8) -> StreamKey {
        format!("1.2.3.{n} 5 6.7.8.9 10").parse().unwrap()
    }

    #[test]
    fn members_lookup_is_shared_not_copied() {
        let mut t = FlowTable::new();
        t.entry(key(1)).members = Rc::from(vec![3, 1, 2]);
        let a = t.members(key(1)).unwrap();
        let b = t.members(key(1)).unwrap();
        assert!(Rc::ptr_eq(&a, &b), "lookups share one allocation");
        assert_eq!(&a[..], &[3, 1, 2]);
        assert!(t.members(key(2)).is_none());
    }

    #[test]
    fn evict_rebuilds_only_affected_entries() {
        let mut t = FlowTable::new();
        t.entry(key(1)).members = Rc::from(vec![1, 2, 3]);
        t.entry(key(2)).members = Rc::from(vec![4, 5]);
        let untouched = t.members(key(2)).unwrap();
        t.evict_instance(2);
        assert_eq!(&t.members(key(1)).unwrap()[..], &[1, 3]);
        assert!(
            Rc::ptr_eq(&untouched, &t.members(key(2)).unwrap()),
            "entries without the instance keep their cached list"
        );
    }
}
