//! The Comma Service Proxy (Chapter 5): packet interception, wild-card
//! stream keys, prioritized in/out filter queues, filter accounting,
//! capability enforcement (Chapter 9), and the SP command interface.
//!
//! The proxy sits at the routing bottleneck between the wired and wireless
//! portions of the network and applies *transparent* services to streams of
//! unmodified applications. Filters are provided by the `comma-filters`
//! crate; this crate defines the mechanism.
//!
//! # Examples
//!
//! A minimal read-only filter and an engine pass:
//!
//! ```
//! use std::any::Any;
//! use comma_netsim::prelude::*;
//! use comma_proxy::engine::{FilterCatalog, FilterEngine};
//! use comma_proxy::filter::{Capabilities, Filter, FilterCtx, NullMetrics, Priority};
//! use comma_proxy::key::StreamKey;
//! use comma_rt::SeedableRng;
//!
//! struct Counter(u64);
//! impl Filter for Counter {
//!     fn kind(&self) -> &'static str { "counter" }
//!     fn priority(&self) -> Priority { Priority::Normal }
//!     fn capabilities(&self) -> Capabilities { Capabilities::READ_ONLY }
//!     fn on_in(&mut self, _: &mut FilterCtx<'_>, _: StreamKey, _: &Packet) { self.0 += 1 }
//!     fn as_any(&mut self) -> &mut dyn Any { self }
//! }
//!
//! let mut catalog = FilterCatalog::new();
//! catalog.register_loaded("counter", Box::new(|_| Ok(Box::new(Counter(0)))));
//! let mut engine = FilterEngine::new(catalog);
//! engine.register(comma_proxy::key::WildKey::ANY, "counter", vec![]).unwrap();
//!
//! let pkt = Packet::tcp(
//!     "11.11.10.99".parse().unwrap(),
//!     "11.11.10.10".parse().unwrap(),
//!     TcpSegment::new(7, 1169, 0, 0, TcpFlags::SYN),
//! );
//! let mut rng = comma_rt::SmallRng::seed_from_u64(0);
//! let out = engine.process(SimTime::ZERO, &mut rng, &NullMetrics, pkt);
//! assert_eq!(out.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod command;
pub mod engine;
pub mod filter;
pub mod flow;
pub mod key;
pub mod node;

pub use batch::PacketBatch;
pub use engine::{EngineLog, FilterCatalog, FilterEngine, InstanceStats, Registration};
pub use flow::FlowTable;
pub use filter::{Capabilities, Filter, FilterCtx, MetricsSource, NullMetrics, Priority, Verdict};
pub use key::{StreamKey, WildKey};
pub use node::ServiceProxy;
