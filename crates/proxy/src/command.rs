//! The Service-Proxy command interface (§5.3): the grammar of the telnet
//! console on port 12000, reproduced as an in-process interpreter with the
//! same fail-silent semantics.
//!
//! Commands: `load <file>`, `remove <file>`, `add <filter> <key> [args]`,
//! `delete <filter> <key>`, `report [<filter>]`.

use comma_netsim::time::SimTime;
use comma_rt::SmallRng;

use crate::engine::FilterEngine;
use crate::filter::MetricsSource;
use crate::key::WildKey;

/// Executes one SP command line against an engine, returning the console
/// output (empty for fail-silent commands).
pub fn execute(
    engine: &mut FilterEngine,
    now: SimTime,
    rng: &mut SmallRng,
    metrics: &dyn MetricsSource,
    line: &str,
) -> String {
    let mut parts = line.split_whitespace();
    let Some(cmd) = parts.next() else {
        return String::new();
    };
    let rest: Vec<&str> = parts.collect();
    match cmd {
        "load" => {
            let Some(file) = rest.first() else {
                return String::new();
            };
            match engine.catalog.load(file) {
                Some(name) => format!("{name}\n"),
                None => String::new(),
            }
        }
        "remove" => {
            if let Some(file) = rest.first() {
                engine.catalog.unload(file);
            }
            String::new()
        }
        "add" => {
            if rest.len() < 5 {
                return String::new();
            }
            let filter = rest[0];
            let key_str = rest[1..5].join(" ");
            let Ok(wild) = key_str.parse::<WildKey>() else {
                return String::new();
            };
            let args: Vec<String> = rest[5..].iter().map(|s| s.to_string()).collect();
            let _ = engine.register(wild, filter, args);
            String::new()
        }
        "delete" => {
            if rest.len() < 5 {
                return String::new();
            }
            let filter = rest[0];
            let key_str = rest[1..5].join(" ");
            let Ok(wild) = key_str.parse::<WildKey>() else {
                return String::new();
            };
            engine.deregister(now, rng, metrics, filter, wild);
            String::new()
        }
        "report" => {
            let lines = engine.report_lines(rest.first().copied());
            let mut out = String::new();
            for l in lines {
                out.push_str(&l);
                out.push('\n');
            }
            out
        }
        _ => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FilterCatalog;
    use crate::filter::{Capabilities, Filter, NullMetrics, Priority};
    use comma_rt::SeedableRng;
    use std::any::Any;

    struct Noop;
    impl Filter for Noop {
        fn kind(&self) -> &'static str {
            "noop"
        }
        fn priority(&self) -> Priority {
            Priority::Normal
        }
        fn capabilities(&self) -> Capabilities {
            Capabilities::READ_ONLY
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn engine() -> FilterEngine {
        let mut catalog = FilterCatalog::new();
        catalog.register("noop", Box::new(|_args| Ok(Box::new(Noop))));
        FilterEngine::new(catalog)
    }

    fn run(engine: &mut FilterEngine, line: &str) -> String {
        let mut rng = SmallRng::seed_from_u64(0);
        execute(engine, SimTime::ZERO, &mut rng, &NullMetrics, line)
    }

    #[test]
    fn load_prints_name_on_success_only() {
        let mut e = engine();
        assert_eq!(run(&mut e, "load /filters/noop.so"), "noop\n");
        assert_eq!(run(&mut e, "load /filters/unknown.so"), "");
        assert_eq!(run(&mut e, "remove noop.so"), "");
        assert!(!e.catalog.is_loaded("noop"));
    }

    #[test]
    fn add_and_report() {
        let mut e = engine();
        run(&mut e, "load noop.so");
        assert_eq!(
            run(&mut e, "add noop 11.11.10.10 0 0.0.0.0 0 extra args"),
            ""
        );
        let report = run(&mut e, "report");
        assert_eq!(report, "noop\n\t11.11.10.10 0 -> 0.0.0.0 0\n");
        let scoped = run(&mut e, "report noop");
        assert_eq!(scoped, report);
        assert_eq!(run(&mut e, "report nosuch"), "");
    }

    #[test]
    fn delete_removes_registration() {
        let mut e = engine();
        run(&mut e, "load noop.so");
        run(&mut e, "add noop 1.2.3.4 5 6.7.8.9 10");
        assert_eq!(e.registrations().len(), 1);
        run(&mut e, "delete noop 1.2.3.4 5 6.7.8.9 10");
        assert!(e.registrations().is_empty());
        let report = run(&mut e, "report");
        assert_eq!(report, "noop\n");
    }

    #[test]
    fn malformed_commands_fail_silent() {
        let mut e = engine();
        assert_eq!(run(&mut e, ""), "");
        assert_eq!(run(&mut e, "add noop 1.2.3.4 5"), "");
        assert_eq!(run(&mut e, "add noop x y z w"), "");
        assert_eq!(run(&mut e, "delete noop"), "");
        assert_eq!(run(&mut e, "frobnicate"), "");
        assert_eq!(run(&mut e, "load"), "");
    }

    #[test]
    fn add_requires_loaded_filter() {
        let mut e = engine();
        // Not loaded yet: add is silently ignored.
        run(&mut e, "add noop 0.0.0.0 0 0.0.0.0 0");
        assert!(e.registrations().is_empty());
    }
}
