//! The Comma Execution-Environment Monitor (EEM, Chapter 6).
//!
//! EEM servers run on any host, gather local network and machine statistics
//! from a modular metrics hub, and push them to interested clients with
//! three notification styles: interrupt callbacks, periodic silent updates
//! to a protected data area, and synchronous-style one-shot polls. The
//! variable set covers the SNMP variables of Table 6.1 and the additional
//! variables of Table 6.2; the client-side API mirrors the `comma_*`
//! functions of Tables 6.3–6.7.
//!
//! All registration and update traffic rides the simulated network as UDP,
//! so the monitor's own overhead (§6.1.2) is measurable — experiment E11
//! reproduces exactly that comparison.

#![warn(missing_docs)]

pub mod client;
pub mod hub;
pub mod id;
pub mod proto;
pub mod server;
pub mod value;
pub mod vars;

pub use client::{EemClient, MonitorApp};
pub use hub::{MetricsHub, SharedHub};
pub use id::{Attr, EemError, Operator, VarId};
pub use proto::{Message, Mode, EEM_PORT};
pub use server::EemServer;
pub use value::{Value, VarType};
pub use vars::{by_name, by_num, COMMA_SYSUPTIME};

#[cfg(test)]
mod integration_tests {
    use super::*;
    use comma_netsim::link::LinkParams;
    use comma_netsim::sim::Simulator;
    use comma_netsim::time::SimTime;
    use comma_tcp::host::Host;

    /// Server + client over the simulated network: periodic updates flow
    /// and the protected data area fills.
    #[test]
    fn end_to_end_periodic_updates() {
        let mut sim = Simulator::new(11);
        let server_addr: comma_netsim::addr::Ipv4Addr = "10.0.0.1".parse().unwrap();
        let client_addr: comma_netsim::addr::Ipv4Addr = "10.0.0.2".parse().unwrap();

        let hub = MetricsHub::shared();
        hub.borrow_mut().set("gw", "sysUpTime", Value::Long(5));

        let mut server_host = Host::new("gw", server_addr);
        server_host.add_app(Box::new(EemServer::new("gw", hub.clone())));

        let mut id = VarId::init();
        id.set_by_name("sysUpTime").unwrap();
        let mut attr = Attr::init();
        attr.set_lbound(Value::Long(0));
        attr.set_ubound(Value::Long(1_000));
        attr.set_operator(Operator::In).unwrap();
        let mut client_host = Host::new("mobile", client_addr);
        let mon = client_host.add_app(Box::new(MonitorApp::new(
            5000,
            server_addr,
            vec![(id, attr, Mode::Periodic)],
        )));

        let s = sim.add_node(Box::new(server_host));
        let c = sim.add_node(Box::new(client_host));
        sim.connect(s, c, LinkParams::wired(), LinkParams::wired());

        // Advance the hub value over time so periodic updates keep coming.
        for t in 1..=40u64 {
            let hub = hub.clone();
            sim.at(SimTime::from_secs(t), move |_sim| {
                hub.borrow_mut()
                    .set("gw", "sysUpTime", Value::Long(t as i64));
            });
        }
        sim.run_until(SimTime::from_secs(35));

        let (history_len, reg_id) = sim.with_node::<Host, _>(c, |h| {
            let app = h.app_mut::<MonitorApp>(mon);
            (app.history.len(), app.reg_ids[0])
        });
        assert!(history_len >= 2, "periodic updates arrived: {history_len}");
        let value = sim.with_node::<Host, _>(c, |h| {
            h.app_mut::<MonitorApp>(mon).client.query_getvalue(reg_id)
        });
        match value {
            Some(Value::Long(v)) => assert!((5..=35).contains(&v), "v={v}"),
            other => panic!("unexpected PDA value {other:?}"),
        }
    }

    /// Interrupt-mode registrations notify as soon as the variable enters
    /// the requested range.
    #[test]
    fn interrupt_fires_on_range_entry() {
        let mut sim = Simulator::new(12);
        let server_addr: comma_netsim::addr::Ipv4Addr = "10.0.0.1".parse().unwrap();
        let client_addr: comma_netsim::addr::Ipv4Addr = "10.0.0.2".parse().unwrap();
        let hub = MetricsHub::shared();
        hub.borrow_mut().set("gw", "cpuLoadAvg", Value::Double(0.1));

        let mut server_host = Host::new("gw", server_addr);
        server_host.add_app(Box::new(EemServer::new("gw", hub.clone())));

        let mut id = VarId::init();
        id.set_by_name("cpuLoadAvg").unwrap();
        let mut attr = Attr::init();
        attr.set_lbound(Value::Double(0.8));
        attr.set_operator(Operator::Gte).unwrap();
        let mut client_host = Host::new("mobile", client_addr);
        let mon = client_host.add_app(Box::new(MonitorApp::new(
            5000,
            server_addr,
            vec![(id, attr, Mode::Interrupt)],
        )));

        let s = sim.add_node(Box::new(server_host));
        let c = sim.add_node(Box::new(client_host));
        sim.connect(s, c, LinkParams::wired(), LinkParams::wired());

        sim.run_until(SimTime::from_secs(5));
        let quiet = sim.with_node::<Host, _>(c, |h| h.app_mut::<MonitorApp>(mon).history.len());
        assert_eq!(quiet, 0, "below threshold: no notification");

        let hub2 = hub.clone();
        sim.at(SimTime::from_secs(6), move |_| {
            hub2.borrow_mut()
                .set("gw", "cpuLoadAvg", Value::Double(0.95));
        });
        sim.run_until(SimTime::from_secs(9));
        let fired = sim.with_node::<Host, _>(c, |h| h.app_mut::<MonitorApp>(mon).history.len());
        assert_eq!(fired, 1, "one immediate notification on range entry");
    }

    /// One-shot polls answer immediately and leave no registration behind.
    #[test]
    fn poll_once_roundtrip() {
        let mut sim = Simulator::new(13);
        let server_addr: comma_netsim::addr::Ipv4Addr = "10.0.0.1".parse().unwrap();
        let client_addr: comma_netsim::addr::Ipv4Addr = "10.0.0.2".parse().unwrap();
        let hub = MetricsHub::shared();
        hub.borrow_mut().set("gw", "bytes_rx", Value::Long(123_456));

        let mut server_host = Host::new("gw", server_addr);
        let srv = server_host.add_app(Box::new(EemServer::new("gw", hub.clone())));

        let mut id = VarId::init();
        id.set_by_name("bytes_rx").unwrap();
        let mut attr = Attr::init();
        attr.set_lbound(Value::Long(0));
        attr.set_operator(Operator::Gte).unwrap();
        let mut client_host = Host::new("mobile", client_addr);
        let mon = client_host.add_app(Box::new(MonitorApp::new(
            5000,
            server_addr,
            vec![(id, attr, Mode::Once)],
        )));

        let s = sim.add_node(Box::new(server_host));
        let c = sim.add_node(Box::new(client_host));
        sim.connect(s, c, LinkParams::wired(), LinkParams::wired());
        sim.run_until(SimTime::from_secs(2));

        let (reg_id, reg_count) = sim.with_node::<Host, _>(c, |h| {
            let app = h.app_mut::<MonitorApp>(mon);
            (app.reg_ids[0], app.client.registration_count())
        });
        assert_eq!(reg_count, 0, "once-mode leaves no registration");
        let v = sim.with_node::<Host, _>(c, |h| {
            h.app_mut::<MonitorApp>(mon).client.query_getvalue(reg_id)
        });
        assert_eq!(v, Some(Value::Long(123_456)));
        let polls = sim.with_node::<Host, _>(s, |h| h.app_mut::<EemServer>(srv).stats.polls_served);
        assert_eq!(polls, 1);
    }
}
