//! The EEM server (§6.2): accepts registrations, periodically checks the
//! registered variables against each client's criteria, and pushes
//! interrupt or batched periodic updates.

use std::any::Any;
use std::collections::HashMap;

use comma_rt::Bytes;
use comma_netsim::addr::Ipv4Addr;
use comma_netsim::time::SimDuration;
use comma_tcp::apps::{App, AppCtx, AppOp};

use crate::hub::SharedHub;
use crate::id::{Attr, Operator};
use crate::proto::{Message, Mode, EEM_PORT};
use crate::value::Value;
use crate::vars;

/// Server traffic counters (experiment E11 measures these).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Registrations accepted.
    pub registrations: u64,
    /// Update datagrams sent.
    pub updates_sent: u64,
    /// Update payload bytes sent.
    pub update_bytes: u64,
    /// One-shot polls served.
    pub polls_served: u64,
}

struct Registration {
    client: (Ipv4Addr, u16),
    var_num: u16,
    index: u32,
    mode: Mode,
    attr: Attr,
    last_sent: Option<Value>,
    was_in_range: bool,
}

/// The EEM server application: install on any host next to a metrics hub.
pub struct EemServer {
    node_name: String,
    hub: SharedHub,
    port: u16,
    check_interval: SimDuration,
    update_every: u32,
    ticks: u32,
    regs: HashMap<((Ipv4Addr, u16), u32), Registration>,
    /// Counters.
    pub stats: ServerStats,
}

const TICK_TOKEN: u64 = 0xEE;

impl EemServer {
    /// Creates a server for `node_name`, reading from `hub`, on the default
    /// EEM port.
    pub fn new(node_name: impl Into<String>, hub: SharedHub) -> Self {
        EemServer {
            node_name: node_name.into(),
            hub,
            port: EEM_PORT,
            check_interval: SimDuration::from_secs(1),
            update_every: 10, // 10 s periodic updates, as in the thesis.
            ticks: 0,
            regs: HashMap::new(),
            stats: ServerStats::default(),
        }
    }

    /// Overrides the periodic-update interval (in check ticks of 1 s).
    pub fn with_update_every(mut self, ticks: u32) -> Self {
        self.update_every = ticks.max(1);
        self
    }

    fn sample(&self, var_num: u16, index: u32) -> Option<Value> {
        let spec = vars::by_num(var_num)?;
        self.hub
            .borrow()
            .get_indexed(&self.node_name, spec.name, index)
            .cloned()
    }

    fn send(&mut self, ctx: &mut AppCtx, client: (Ipv4Addr, u16), msgs: &[Message]) {
        if msgs.is_empty() {
            return;
        }
        let payload = Message::encode_batch(msgs);
        self.stats.updates_sent += 1;
        self.stats.update_bytes += payload.len() as u64;
        ctx.op(AppOp::SendUdp {
            src_port: self.port,
            dst: client,
            payload: Bytes::from(payload.into_bytes()),
        });
    }

    fn attr_from(op: Operator, lbound: Value, ubound: Option<Value>) -> Attr {
        let mut attr = Attr::init();
        attr.set_lbound(lbound);
        if let Some(u) = ubound {
            attr.set_ubound(u);
        }
        // Operator type errors were filtered client-side; ignore here.
        let _ = attr.set_operator(op);
        attr
    }
}

impl App for EemServer {
    fn name(&self) -> &str {
        "eem-server"
    }

    fn on_start(&mut self, ctx: &mut AppCtx) {
        ctx.op(AppOp::BindUdp { port: self.port });
        ctx.timer(self.check_interval, TICK_TOKEN);
    }

    fn on_udp(&mut self, ctx: &mut AppCtx, from: (Ipv4Addr, u16), _dst_port: u16, payload: Bytes) {
        let Ok(text) = std::str::from_utf8(&payload) else {
            return;
        };
        for msg in Message::decode_batch(text) {
            match msg {
                Message::Register {
                    reg_id,
                    var_num,
                    index,
                    mode,
                    op,
                    lbound,
                    ubound,
                } => {
                    if vars::by_num(var_num).is_none() {
                        self.send(ctx, from, &[Message::Nak { reg_id }]);
                        continue;
                    }
                    if mode == Mode::Once {
                        // Temporary registration: immediately removed after
                        // the metric is retrieved (§6.2).
                        let value = self.sample(var_num, index).unwrap_or(Value::Long(0));
                        let attr = Self::attr_from(op, lbound, ubound);
                        let in_range = attr.matches(&value);
                        self.stats.polls_served += 1;
                        self.send(
                            ctx,
                            from,
                            &[Message::Update {
                                reg_id,
                                in_range,
                                value,
                            }],
                        );
                        continue;
                    }
                    self.stats.registrations += 1;
                    self.regs.insert(
                        (from, reg_id),
                        Registration {
                            client: from,
                            var_num,
                            index,
                            mode,
                            attr: Self::attr_from(op, lbound, ubound),
                            last_sent: None,
                            was_in_range: false,
                        },
                    );
                }
                Message::Deregister { reg_id } => {
                    self.regs.remove(&(from, reg_id));
                }
                _ => {}
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut AppCtx, token: u64) {
        if token != TICK_TOKEN {
            return;
        }
        self.ticks += 1;
        let periodic_due = self.ticks.is_multiple_of(self.update_every);
        // Evaluate all registrations, gathering messages per client.
        let mut immediate: Vec<((Ipv4Addr, u16), Message)> = Vec::new();
        let mut batched: HashMap<(Ipv4Addr, u16), Vec<Message>> = HashMap::new();
        let keys: Vec<((Ipv4Addr, u16), u32)> = self.regs.keys().cloned().collect();
        for key in keys {
            let sampled = {
                let reg = self.regs.get(&key).expect("reg");
                self.sample(reg.var_num, reg.index)
            };
            let Some(value) = sampled else { continue };
            let reg = self.regs.get_mut(&key).expect("reg");
            let in_range = reg.attr.matches(&value);
            match reg.mode {
                Mode::Interrupt => {
                    // Notify immediately when the variable moves into range.
                    if in_range && !reg.was_in_range {
                        immediate.push((
                            reg.client,
                            Message::Update {
                                reg_id: key.1,
                                in_range,
                                value: value.clone(),
                            },
                        ));
                        reg.last_sent = Some(value.clone());
                    }
                }
                Mode::Periodic => {
                    if periodic_due && in_range && reg.last_sent.as_ref() != Some(&value) {
                        batched
                            .entry(reg.client)
                            .or_default()
                            .push(Message::Update {
                                reg_id: key.1,
                                in_range,
                                value: value.clone(),
                            });
                        reg.last_sent = Some(value.clone());
                    }
                }
                Mode::Once => {}
            }
            reg.was_in_range = in_range;
        }
        for (client, msg) in immediate {
            self.send(ctx, client, &[msg]);
        }
        for (client, msgs) in batched {
            self.send(ctx, client, &msgs);
        }
        ctx.timer(self.check_interval, TICK_TOKEN);
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}
