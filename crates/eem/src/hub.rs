//! The metrics hub: the EEM server's modular data source.
//!
//! The thesis's EEM reads SNMP daemons and kernel statistics; here the same
//! role is played by a hub that samplers fill from simulator state (host
//! counters, channel statistics, synthetic load). The hub is shared
//! (`Rc<RefCell<_>>`) between the sampling loop, the EEM servers, and
//! adaptive proxy filters.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use comma_tcp::host::Host;

use crate::value::Value;

/// Shared handle to a [`MetricsHub`].
pub type SharedHub = Rc<RefCell<MetricsHub>>;

/// Current variable values, keyed by (node name, variable, index).
#[derive(Default, Debug)]
pub struct MetricsHub {
    values: HashMap<(String, String, u32), Value>,
}

impl MetricsHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        MetricsHub::default()
    }

    /// Creates a shared, empty hub.
    pub fn shared() -> SharedHub {
        Rc::new(RefCell::new(MetricsHub::new()))
    }

    /// Sets a variable (index 0).
    pub fn set(&mut self, node: &str, var: &str, value: Value) {
        self.set_indexed(node, var, 0, value);
    }

    /// Sets an indexed variable.
    pub fn set_indexed(&mut self, node: &str, var: &str, index: u32, value: Value) {
        self.values
            .insert((node.to_string(), var.to_string(), index), value);
    }

    /// Reads a variable (index 0).
    pub fn get(&self, node: &str, var: &str) -> Option<&Value> {
        self.get_indexed(node, var, 0)
    }

    /// Reads an indexed variable.
    pub fn get_indexed(&self, node: &str, var: &str, index: u32) -> Option<&Value> {
        self.values.get(&(node.to_string(), var.to_string(), index))
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Fills the hub's SNMP-named variables from a host's counters (the "local
/// information sources" of §6.2).
pub fn sample_host(hub: &mut MetricsHub, node: &str, host: &Host, uptime_secs: i64) {
    let c = host.counters;
    let set = |hub: &mut MetricsHub, var: &str, v: i64| hub.set(node, var, Value::Long(v));
    set(hub, "sysUpTime", uptime_secs);
    hub.set(
        node,
        "sysDescr",
        Value::Str(format!("comma-sim host {node}")),
    );
    hub.set(node, "sysName", Value::Str(node.to_string()));
    set(hub, "ipInReceives", c.ip_in_receives as i64);
    set(hub, "ipInDelivers", c.ip_in_delivers as i64);
    set(hub, "ipOutRequests", c.ip_out_requests as i64);
    set(hub, "ipInDiscards", c.ip_in_discards as i64);
    set(hub, "udpInDatagrams", c.udp_in_datagrams as i64);
    set(hub, "udpNoPorts", c.udp_no_ports as i64);
    set(hub, "udpOutDatagrams", c.udp_out_datagrams as i64);
    set(hub, "tcpInSegs", c.tcp_in_segs as i64);
    set(hub, "tcpOutSegs", c.tcp_out_segs as i64);
    set(hub, "tcpActiveOpens", c.tcp_active_opens as i64);
    set(hub, "tcpPassiveOpens", c.tcp_passive_opens as i64);
    set(hub, "tcpEstabResets", c.tcp_estab_resets as i64);
    set(hub, "tcpCurrEstab", host.curr_estab() as i64);
    set(hub, "tcpRetransSegs", host.retrans_segs() as i64);
    set(hub, "tcpRtoAlgorithm", 4); // Van Jacobson's algorithm.
}

/// Mirrors the same SNMP-named counters into the observability registry
/// (gauge scope = node name). No-op when `obs` is disabled, so samplers can
/// call it unconditionally.
pub fn sample_host_obs(obs: &comma_obs::Obs, node: &str, host: &Host, uptime_secs: i64) {
    if !obs.is_enabled() {
        return;
    }
    let c = host.counters;
    let set = |var: &'static str, v: f64| obs.gauge(node, var, v);
    set("sysUpTime", uptime_secs as f64);
    set("ipInReceives", c.ip_in_receives as f64);
    set("ipInDelivers", c.ip_in_delivers as f64);
    set("ipOutRequests", c.ip_out_requests as f64);
    set("ipInDiscards", c.ip_in_discards as f64);
    set("udpInDatagrams", c.udp_in_datagrams as f64);
    set("udpNoPorts", c.udp_no_ports as f64);
    set("udpOutDatagrams", c.udp_out_datagrams as f64);
    set("tcpInSegs", c.tcp_in_segs as f64);
    set("tcpOutSegs", c.tcp_out_segs as f64);
    set("tcpActiveOpens", c.tcp_active_opens as f64);
    set("tcpPassiveOpens", c.tcp_passive_opens as f64);
    set("tcpEstabResets", c.tcp_estab_resets as f64);
    set("tcpCurrEstab", host.curr_estab() as f64);
    set("tcpRetransSegs", host.retrans_segs() as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut hub = MetricsHub::new();
        assert!(hub.is_empty());
        hub.set("proxy", "wireless.up", Value::Long(1));
        hub.set_indexed("proxy", "ifInOctets", 2, Value::Long(500));
        assert_eq!(hub.get("proxy", "wireless.up"), Some(&Value::Long(1)));
        assert_eq!(
            hub.get_indexed("proxy", "ifInOctets", 2),
            Some(&Value::Long(500))
        );
        assert_eq!(hub.get("proxy", "ifInOctets"), None, "index 0 distinct");
        assert_eq!(hub.get("other", "wireless.up"), None);
        assert_eq!(hub.len(), 2);
    }

    #[test]
    fn host_sampler_fills_snmp_names() {
        let mut hub = MetricsHub::new();
        let host = Host::new("m", "10.0.0.1".parse().unwrap());
        sample_host(&mut hub, "m", &host, 42);
        assert_eq!(hub.get("m", "sysUpTime"), Some(&Value::Long(42)));
        assert_eq!(hub.get("m", "tcpCurrEstab"), Some(&Value::Long(0)));
        assert!(matches!(hub.get("m", "sysName"), Some(Value::Str(s)) if s == "m"));
    }
}
