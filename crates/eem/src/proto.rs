//! The lean EEM wire protocol (§6.1.2): pipe-delimited text lines carried
//! in UDP datagrams.

use crate::id::Operator;
use crate::value::Value;

/// Registration delivery mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Immediate notification when the variable enters its range.
    Interrupt,
    /// Batched periodic updates of in-range, changed variables.
    Periodic,
    /// One-shot poll: sample, reply, forget.
    Once,
}

impl Mode {
    fn tag(self) -> &'static str {
        match self {
            Mode::Interrupt => "I",
            Mode::Periodic => "P",
            Mode::Once => "O",
        }
    }

    fn from_tag(tag: &str) -> Option<Mode> {
        Some(match tag {
            "I" => Mode::Interrupt,
            "P" => Mode::Periodic,
            "O" => Mode::Once,
            _ => return None,
        })
    }
}

/// One protocol message.
#[derive(Clone, PartialEq, Debug)]
pub enum Message {
    /// Client → server: register interest.
    Register {
        /// Client-chosen registration id.
        reg_id: u32,
        /// Variable number.
        var_num: u16,
        /// Variable index.
        index: u32,
        /// Delivery mode.
        mode: Mode,
        /// Range operator.
        op: Operator,
        /// Lower bound.
        lbound: Value,
        /// Upper bound (binary operators).
        ubound: Option<Value>,
    },
    /// Client → server: remove a registration.
    Deregister {
        /// Registration id to remove.
        reg_id: u32,
    },
    /// Server → client: a value update.
    Update {
        /// Registration the update belongs to.
        reg_id: u32,
        /// Whether the value is currently inside the requested range.
        in_range: bool,
        /// Current value.
        value: Value,
    },
    /// Server → client: a registration was rejected (unknown variable).
    Nak {
        /// Registration id that failed.
        reg_id: u32,
    },
}

impl Message {
    /// Encodes one message as a line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Message::Register {
                reg_id,
                var_num,
                index,
                mode,
                op,
                lbound,
                ubound,
            } => {
                let ub = ubound
                    .as_ref()
                    .map(|u| u.encode())
                    .unwrap_or_else(|| "-".into());
                format!(
                    "REG|{reg_id}|{var_num}|{index}|{}|{}|{}|{ub}",
                    mode.tag(),
                    op.tag(),
                    lbound.encode()
                )
            }
            Message::Deregister { reg_id } => format!("DEREG|{reg_id}"),
            Message::Update {
                reg_id,
                in_range,
                value,
            } => {
                format!("UPD|{reg_id}|{}|{}", u8::from(*in_range), value.encode())
            }
            Message::Nak { reg_id } => format!("NAK|{reg_id}"),
        }
    }

    /// Decodes one line.
    pub fn decode(line: &str) -> Option<Message> {
        let parts: Vec<&str> = line.split('|').collect();
        match *parts.first()? {
            "REG" if parts.len() == 8 => Some(Message::Register {
                reg_id: parts[1].parse().ok()?,
                var_num: parts[2].parse().ok()?,
                index: parts[3].parse().ok()?,
                mode: Mode::from_tag(parts[4])?,
                op: Operator::from_tag(parts[5])?,
                lbound: Value::decode(parts[6])?,
                ubound: if parts[7] == "-" {
                    None
                } else {
                    Some(Value::decode(parts[7])?)
                },
            }),
            "DEREG" if parts.len() == 2 => Some(Message::Deregister {
                reg_id: parts[1].parse().ok()?,
            }),
            "UPD" if parts.len() == 4 => Some(Message::Update {
                reg_id: parts[1].parse().ok()?,
                in_range: parts[2] == "1",
                value: Value::decode(parts[3])?,
            }),
            "NAK" if parts.len() == 2 => Some(Message::Nak {
                reg_id: parts[1].parse().ok()?,
            }),
            _ => None,
        }
    }

    /// Encodes a batch of messages into one datagram payload.
    pub fn encode_batch(msgs: &[Message]) -> String {
        msgs.iter()
            .map(|m| m.encode())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Decodes a datagram payload into messages (bad lines skipped).
    pub fn decode_batch(payload: &str) -> Vec<Message> {
        payload.lines().filter_map(Message::decode).collect()
    }
}

/// Default UDP port of EEM servers.
pub const EEM_PORT: u16 = 4888;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_messages() {
        let msgs = vec![
            Message::Register {
                reg_id: 7,
                var_num: 3,
                index: 0,
                mode: Mode::Periodic,
                op: Operator::In,
                lbound: Value::Long(0),
                ubound: Some(Value::Long(20)),
            },
            Message::Register {
                reg_id: 8,
                var_num: 82,
                index: 0,
                mode: Mode::Interrupt,
                op: Operator::Gte,
                lbound: Value::Double(0.8),
                ubound: None,
            },
            Message::Deregister { reg_id: 7 },
            Message::Update {
                reg_id: 8,
                in_range: true,
                value: Value::Double(0.93),
            },
            Message::Nak { reg_id: 9 },
        ];
        for m in &msgs {
            assert_eq!(Message::decode(&m.encode()), Some(m.clone()), "{m:?}");
        }
        let batch = Message::encode_batch(&msgs);
        assert_eq!(Message::decode_batch(&batch), msgs);
    }

    #[test]
    fn malformed_rejected() {
        assert_eq!(Message::decode("REG|1|2"), None);
        assert_eq!(Message::decode("UPD|x|1|L 5"), None);
        assert_eq!(Message::decode("???"), None);
        assert_eq!(Message::decode_batch("NAK|1\ngarbage\nDEREG|2").len(), 2);
    }

    #[test]
    fn string_values_survive_batching() {
        let m = Message::Update {
            reg_id: 1,
            in_range: true,
            value: Value::Str("lo0 eth0 wvlan0".into()),
        };
        assert_eq!(Message::decode(&m.encode()), Some(m));
    }
}
