//! The EEM client library (§6.3.2): registration, the protected data area
//! (PDA), and interrupt/periodic/poll notification.
//!
//! [`EemClient`] is embeddable: an application holds one and forwards its
//! UDP traffic to [`EemClient::handle_udp`], mirroring the thesis's
//! client thread. [`MonitorApp`] wraps a client as a standalone
//! application for tools and tests.

use std::any::Any;
use std::collections::HashMap;

use comma_rt::Bytes;
use comma_netsim::addr::Ipv4Addr;
use comma_tcp::apps::{App, AppCtx, AppOp};

use crate::id::{Attr, EemError, VarId};
use crate::proto::{Message, Mode, EEM_PORT};
use crate::value::Value;

/// Callback invoked for interrupt-style notifications (`comma_setcallback`).
pub type Callback = Box<dyn FnMut(u32, &Value)>;

/// One slot of the protected data area.
#[derive(Clone, Debug)]
struct PdaEntry {
    value: Value,
    in_range: bool,
    changed: bool,
}

/// Client traffic counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientStats {
    /// Registration datagrams sent.
    pub regs_sent: u64,
    /// Updates received.
    pub updates_received: u64,
    /// Registration NAKs received.
    pub naks: u64,
}

/// The EEM client (`comma_init` … `comma_term`).
pub struct EemClient {
    local_port: u16,
    default_server: Ipv4Addr,
    next_reg: u32,
    regs: HashMap<u32, (VarId, Mode)>,
    pda: HashMap<u32, PdaEntry>,
    callback: Option<Callback>,
    /// Counters.
    pub stats: ClientStats,
}

impl EemClient {
    /// Creates a client that will talk to the EEM server on
    /// `default_server` unless an id carries its own server.
    pub fn new(local_port: u16, default_server: Ipv4Addr) -> Self {
        EemClient {
            local_port,
            default_server,
            next_reg: 1,
            regs: HashMap::new(),
            pda: HashMap::new(),
            callback: None,
            stats: ClientStats::default(),
        }
    }

    /// `comma_init`: binds the client's UDP port. Call from the embedding
    /// application's `on_start`.
    pub fn init(&mut self, ctx: &mut AppCtx) {
        ctx.op(AppOp::BindUdp {
            port: self.local_port,
        });
    }

    /// `comma_setcallback`: interrupt-style notification target.
    pub fn set_callback(&mut self, cb: Callback) {
        self.callback = Some(cb);
    }

    /// The client's UDP port.
    pub fn local_port(&self) -> u16 {
        self.local_port
    }

    fn server_of(&self, id: &VarId) -> (Ipv4Addr, u16) {
        (id.server().unwrap_or(self.default_server), EEM_PORT)
    }

    /// `comma_var_register`: registers `id` with `attr` in the given mode;
    /// returns the registration handle.
    pub fn var_register(
        &mut self,
        ctx: &mut AppCtx,
        id: &VarId,
        attr: &Attr,
        mode: Mode,
    ) -> Result<u32, EemError> {
        attr.validate()?;
        if id.is_index_reqd() && id.index().is_none() {
            return Err(EemError(format!(
                "variable {} requires an index",
                id.get_name().unwrap_or("?")
            )));
        }
        let reg_id = self.next_reg;
        self.next_reg += 1;
        let msg = Message::Register {
            reg_id,
            var_num: id.num(),
            index: id.index().unwrap_or(0),
            mode,
            op: attr.operator().expect("validated"),
            lbound: attr.lbound().expect("validated").clone(),
            ubound: attr.ubound().cloned(),
        };
        self.stats.regs_sent += 1;
        ctx.op(AppOp::SendUdp {
            src_port: self.local_port,
            dst: self.server_of(id),
            payload: Bytes::from(msg.encode().into_bytes()),
        });
        if mode != Mode::Once {
            self.regs.insert(reg_id, (id.clone(), mode));
        }
        Ok(reg_id)
    }

    /// `comma_var_deregister`.
    pub fn var_deregister(&mut self, ctx: &mut AppCtx, reg_id: u32) {
        if let Some((id, _)) = self.regs.remove(&reg_id) {
            ctx.op(AppOp::SendUdp {
                src_port: self.local_port,
                dst: self.server_of(&id),
                payload: Bytes::from(Message::Deregister { reg_id }.encode().into_bytes()),
            });
        }
        self.pda.remove(&reg_id);
    }

    /// `comma_var_deregisterall`.
    pub fn var_deregister_all(&mut self, ctx: &mut AppCtx) {
        let ids: Vec<u32> = self.regs.keys().copied().collect();
        for reg_id in ids {
            self.var_deregister(ctx, reg_id);
        }
    }

    /// `comma_query_getvalue_once`: one-shot poll. The reply lands in the
    /// PDA under the returned registration id.
    pub fn query_getvalue_once(
        &mut self,
        ctx: &mut AppCtx,
        id: &VarId,
        attr: &Attr,
    ) -> Result<u32, EemError> {
        self.var_register(ctx, id, attr, Mode::Once)
    }

    /// Feeds a received UDP datagram to the client; returns `true` if it
    /// was EEM traffic.
    pub fn handle_udp(&mut self, _from: (Ipv4Addr, u16), dst_port: u16, payload: &[u8]) -> bool {
        if dst_port != self.local_port {
            return false;
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            return false;
        };
        let msgs = Message::decode_batch(text);
        if msgs.is_empty() {
            return false;
        }
        for msg in msgs {
            match msg {
                Message::Update {
                    reg_id,
                    in_range,
                    value,
                } => {
                    self.stats.updates_received += 1;
                    let is_interrupt = matches!(self.regs.get(&reg_id), Some((_, Mode::Interrupt)));
                    if is_interrupt || self.callback.is_some() {
                        if let Some(cb) = self.callback.as_mut() {
                            cb(reg_id, &value);
                        }
                    }
                    self.pda.insert(
                        reg_id,
                        PdaEntry {
                            value,
                            in_range,
                            changed: true,
                        },
                    );
                }
                Message::Nak { reg_id } => {
                    self.stats.naks += 1;
                    self.regs.remove(&reg_id);
                }
                _ => {}
            }
        }
        true
    }

    /// `comma_query_getvalue`: most recent value from the PDA.
    pub fn query_getvalue(&mut self, reg_id: u32) -> Option<Value> {
        let entry = self.pda.get_mut(&reg_id)?;
        entry.changed = false;
        Some(entry.value.clone())
    }

    /// `comma_query_isinrange`.
    pub fn query_isinrange(&self, reg_id: u32) -> Option<bool> {
        self.pda.get(&reg_id).map(|e| e.in_range)
    }

    /// `comma_query_haschanged`: whether the value changed since the last
    /// [`EemClient::query_getvalue`].
    pub fn query_haschanged(&self, reg_id: u32) -> bool {
        self.pda.get(&reg_id).map(|e| e.changed).unwrap_or(false)
    }

    /// Active (non-once) registrations.
    pub fn registration_count(&self) -> usize {
        self.regs.len()
    }
}

/// A standalone application wrapping an [`EemClient`]: registers a fixed
/// set of variables at start and collects updates (tools and tests).
pub struct MonitorApp {
    /// The embedded client.
    pub client: EemClient,
    regs_at_start: Vec<(VarId, Attr, Mode)>,
    /// Registration ids returned at start, in order.
    pub reg_ids: Vec<u32>,
    /// Every update observed, in arrival order.
    pub history: Vec<(u32, Value)>,
}

impl MonitorApp {
    /// Creates a monitor app.
    pub fn new(local_port: u16, server: Ipv4Addr, regs: Vec<(VarId, Attr, Mode)>) -> Self {
        MonitorApp {
            client: EemClient::new(local_port, server),
            regs_at_start: regs,
            reg_ids: Vec::new(),
            history: Vec::new(),
        }
    }
}

impl App for MonitorApp {
    fn name(&self) -> &str {
        "eem-monitor"
    }

    fn on_start(&mut self, ctx: &mut AppCtx) {
        self.client.init(ctx);
        let regs = std::mem::take(&mut self.regs_at_start);
        for (id, attr, mode) in regs {
            if let Ok(reg_id) = self.client.var_register(ctx, &id, &attr, mode) {
                self.reg_ids.push(reg_id);
            }
        }
    }

    fn on_udp(&mut self, _ctx: &mut AppCtx, from: (Ipv4Addr, u16), dst_port: u16, payload: Bytes) {
        let before = self.client.stats.updates_received;
        self.client.handle_udp(from, dst_port, &payload);
        if self.client.stats.updates_received > before {
            // Record what arrived (PDA holds the latest; replay from it).
            for (&reg_id, _) in self.client.regs.clone().iter() {
                if self.client.query_haschanged(reg_id) {
                    if let Some(v) = self.client.query_getvalue(reg_id) {
                        self.history.push((reg_id, v));
                    }
                }
            }
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Operator;
    use comma_netsim::time::SimTime;

    fn id_uptime() -> VarId {
        VarId::named("sysUpTime").unwrap()
    }

    fn attr_in(lo: i64, hi: i64) -> Attr {
        let mut a = Attr::init();
        a.set_lbound(Value::Long(lo));
        a.set_ubound(Value::Long(hi));
        a.set_operator(Operator::In).unwrap();
        a
    }

    #[test]
    fn register_emits_wire_message() {
        let mut client = EemClient::new(5000, "10.0.0.9".parse().unwrap());
        let mut ctx = AppCtx::new(SimTime::ZERO);
        client.init(&mut ctx);
        let reg = client
            .var_register(&mut ctx, &id_uptime(), &attr_in(0, 20), Mode::Periodic)
            .unwrap();
        let ops = ctx.take_ops();
        assert_eq!(ops.len(), 2, "bind + register");
        match &ops[1] {
            AppOp::SendUdp { dst, payload, .. } => {
                assert_eq!(dst.0, "10.0.0.9".parse().unwrap());
                assert_eq!(dst.1, EEM_PORT);
                let msg = Message::decode(std::str::from_utf8(payload).unwrap()).unwrap();
                assert!(matches!(msg, Message::Register { var_num: 3, .. }));
            }
            other => panic!("unexpected op {other:?}"),
        }
        assert_eq!(client.registration_count(), 1);
        let _ = reg;
    }

    #[test]
    fn update_lands_in_pda_and_flags_change() {
        let mut client = EemClient::new(5000, "10.0.0.9".parse().unwrap());
        let mut ctx = AppCtx::new(SimTime::ZERO);
        let reg = client
            .var_register(&mut ctx, &id_uptime(), &attr_in(0, 20), Mode::Periodic)
            .unwrap();
        let upd = Message::Update {
            reg_id: reg,
            in_range: true,
            value: Value::Long(12),
        };
        assert!(client.handle_udp(
            ("10.0.0.9".parse().unwrap(), EEM_PORT),
            5000,
            upd.encode().as_bytes()
        ));
        assert!(client.query_haschanged(reg));
        assert_eq!(client.query_isinrange(reg), Some(true));
        assert_eq!(client.query_getvalue(reg), Some(Value::Long(12)));
        assert!(
            !client.query_haschanged(reg),
            "read clears the changed flag"
        );
    }

    #[test]
    fn callback_invoked_on_update() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let hits: Rc<RefCell<Vec<(u32, Value)>>> = Rc::default();
        let mut client = EemClient::new(5000, "10.0.0.9".parse().unwrap());
        let sink = hits.clone();
        client.set_callback(Box::new(move |reg, v| {
            sink.borrow_mut().push((reg, v.clone()))
        }));
        let mut ctx = AppCtx::new(SimTime::ZERO);
        let reg = client
            .var_register(&mut ctx, &id_uptime(), &attr_in(0, 20), Mode::Interrupt)
            .unwrap();
        let upd = Message::Update {
            reg_id: reg,
            in_range: true,
            value: Value::Long(5),
        };
        client.handle_udp(
            ("10.0.0.9".parse().unwrap(), EEM_PORT),
            5000,
            upd.encode().as_bytes(),
        );
        assert_eq!(hits.borrow().len(), 1);
    }

    #[test]
    fn register_requires_valid_attr_and_index() {
        let mut client = EemClient::new(5000, "10.0.0.9".parse().unwrap());
        let mut ctx = AppCtx::new(SimTime::ZERO);
        let incomplete = Attr::init();
        assert!(client
            .var_register(&mut ctx, &id_uptime(), &incomplete, Mode::Periodic)
            .is_err());
        // Indexed variable without an index fails.
        let mut id = VarId::named("ifInOctets").unwrap();
        assert!(client
            .var_register(&mut ctx, &id, &attr_in(0, 100), Mode::Periodic)
            .is_err());
        id.set_index(1);
        assert!(client
            .var_register(&mut ctx, &id, &attr_in(0, 100), Mode::Periodic)
            .is_ok());
    }

    #[test]
    fn deregister_all_clears() {
        let mut client = EemClient::new(5000, "10.0.0.9".parse().unwrap());
        let mut ctx = AppCtx::new(SimTime::ZERO);
        client
            .var_register(&mut ctx, &id_uptime(), &attr_in(0, 20), Mode::Periodic)
            .unwrap();
        client
            .var_register(&mut ctx, &id_uptime(), &attr_in(20, 40), Mode::Periodic)
            .unwrap();
        assert_eq!(client.registration_count(), 2);
        client.var_deregister_all(&mut ctx);
        assert_eq!(client.registration_count(), 0);
        let dereg_count = ctx
            .take_ops()
            .iter()
            .filter(|op| match op {
                AppOp::SendUdp { payload, .. } => {
                    std::str::from_utf8(payload).unwrap().starts_with("DEREG")
                }
                _ => false,
            })
            .count();
        assert_eq!(dereg_count, 2);
    }
}
