//! Variable identifiers and notification attributes: the `comma_id_*` and
//! `comma_attr_*` interface of Tables 6.4 and 6.5.

use comma_netsim::addr::Ipv4Addr;

use crate::value::{Value, VarType};
use crate::vars;

/// Error from the EEM client interface (the thesis returns status codes;
/// `COMMA_OK` maps to `Ok(())`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EemError(pub String);

impl std::fmt::Display for EemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "eem: {}", self.0)
    }
}

impl std::error::Error for EemError {}

/// A variable id: which variable, on which server (`comma_id_t`).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct VarId {
    num: u16,
    index: Option<u32>,
    server: Option<Ipv4Addr>,
}

impl VarId {
    /// `comma_id_init`: a cleared id.
    pub fn init() -> Self {
        VarId::default()
    }

    /// `comma_id_setnum`: selects a variable by numeric id.
    pub fn set_num(&mut self, num: u16) -> Result<(), EemError> {
        vars::by_num(num).ok_or_else(|| EemError(format!("unknown variable {num}")))?;
        self.num = num;
        Ok(())
    }

    /// `comma_id_setbyname`: selects a variable by name.
    pub fn set_by_name(&mut self, name: &str) -> Result<(), EemError> {
        let spec =
            vars::by_name(name).ok_or_else(|| EemError(format!("unknown variable {name}")))?;
        self.num = spec.num;
        Ok(())
    }

    /// `comma_id_setindex`: sets the index for per-interface variables.
    pub fn set_index(&mut self, index: u32) {
        self.index = Some(index);
    }

    /// `comma_id_setall`: variable number and index in one call.
    pub fn set_all(&mut self, num: u16, index: u32) -> Result<(), EemError> {
        self.set_num(num)?;
        self.index = Some(index);
        Ok(())
    }

    /// `comma_id_setserver`: directs the registration at a remote server.
    pub fn set_server(&mut self, server: Ipv4Addr) {
        self.server = Some(server);
    }

    /// `comma_id_isindexreqd`.
    pub fn is_index_reqd(&self) -> bool {
        vars::by_num(self.num).map(|s| s.indexed).unwrap_or(false)
    }

    /// `comma_id_gettype`.
    pub fn get_type(&self) -> Option<VarType> {
        vars::by_num(self.num).map(|s| s.ty)
    }

    /// `comma_id_getname`.
    pub fn get_name(&self) -> Option<&'static str> {
        vars::by_num(self.num).map(|s| s.name)
    }

    /// The numeric variable id.
    pub fn num(&self) -> u16 {
        self.num
    }

    /// The index, if set.
    pub fn index(&self) -> Option<u32> {
        self.index
    }

    /// The target server, if remote.
    pub fn server(&self) -> Option<Ipv4Addr> {
        self.server
    }

    /// Key identifying this variable in the protected data area.
    pub fn key(&self) -> (u16, u32) {
        (self.num, self.index.unwrap_or(0))
    }

    /// Convenience constructor.
    pub fn named(name: &str) -> Result<VarId, EemError> {
        let mut id = VarId::init();
        id.set_by_name(name)?;
        Ok(id)
    }
}

/// Comparison operator for notification ranges (§6.3.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Operator {
    /// Greater than the lower bound.
    Gt,
    /// Greater than or equal to the lower bound.
    Gte,
    /// Less than the lower bound.
    Lt,
    /// Less than or equal to the lower bound.
    Lte,
    /// Equal to the lower bound.
    Eq,
    /// Not equal to the lower bound.
    Neq,
    /// Inside `[lbound, ubound]`.
    In,
    /// Outside `[lbound, ubound]`.
    Out,
}

impl Operator {
    /// Wire tag.
    pub fn tag(self) -> &'static str {
        match self {
            Operator::Gt => "GT",
            Operator::Gte => "GTE",
            Operator::Lt => "LT",
            Operator::Lte => "LTE",
            Operator::Eq => "EQ",
            Operator::Neq => "NEQ",
            Operator::In => "IN",
            Operator::Out => "OUT",
        }
    }

    /// Inverse of [`Operator::tag`].
    pub fn from_tag(tag: &str) -> Option<Operator> {
        Some(match tag {
            "GT" => Operator::Gt,
            "GTE" => Operator::Gte,
            "LT" => Operator::Lt,
            "LTE" => Operator::Lte,
            "EQ" => Operator::Eq,
            "NEQ" => Operator::Neq,
            "IN" => Operator::In,
            "OUT" => Operator::Out,
            _ => return None,
        })
    }

    /// Whether this operator needs both bounds.
    pub fn is_binary(self) -> bool {
        matches!(self, Operator::In | Operator::Out)
    }
}

/// Notification attributes (`comma_attr_t`): bounds plus operator.
#[derive(Clone, PartialEq, Debug)]
pub struct Attr {
    lbound: Option<Value>,
    ubound: Option<Value>,
    operator: Option<Operator>,
}

impl Attr {
    /// `comma_attr_init`.
    pub fn init() -> Self {
        Attr {
            lbound: None,
            ubound: None,
            operator: None,
        }
    }

    /// `comma_attr_setlbound`.
    pub fn set_lbound(&mut self, v: Value) {
        self.lbound = Some(v);
    }

    /// `comma_attr_setubound`.
    pub fn set_ubound(&mut self, v: Value) {
        self.ubound = Some(v);
    }

    /// `comma_attr_setoperator`. Strings admit only `EQ`/`NEQ` (§6.3.2).
    pub fn set_operator(&mut self, op: Operator) -> Result<(), EemError> {
        if let Some(Value::Str(_)) = &self.lbound {
            if !matches!(op, Operator::Eq | Operator::Neq) {
                return Err(EemError("string variables admit only EQ/NEQ".into()));
            }
        }
        self.operator = Some(op);
        Ok(())
    }

    /// The lower bound.
    pub fn lbound(&self) -> Option<&Value> {
        self.lbound.as_ref()
    }

    /// The upper bound.
    pub fn ubound(&self) -> Option<&Value> {
        self.ubound.as_ref()
    }

    /// The operator.
    pub fn operator(&self) -> Option<Operator> {
        self.operator
    }

    /// Validates completeness: binary operators need both bounds.
    pub fn validate(&self) -> Result<(), EemError> {
        let op = self
            .operator
            .ok_or_else(|| EemError("operator not set".into()))?;
        if self.lbound.is_none() {
            return Err(EemError("lower bound not set".into()));
        }
        if op.is_binary() && self.ubound.is_none() {
            return Err(EemError("binary operator needs an upper bound".into()));
        }
        Ok(())
    }

    /// Evaluates the attribute against a value: is it "in range"?
    pub fn matches(&self, value: &Value) -> bool {
        let Some(op) = self.operator else {
            return false;
        };
        let Some(lb) = &self.lbound else { return false };
        match (value, lb) {
            (Value::Str(v), Value::Str(l)) => match op {
                Operator::Eq => v == l,
                Operator::Neq => v != l,
                _ => false,
            },
            _ => {
                let (Some(v), Some(l)) = (value.as_f64(), lb.as_f64()) else {
                    return false;
                };
                match op {
                    Operator::Gt => v > l,
                    Operator::Gte => v >= l,
                    Operator::Lt => v < l,
                    Operator::Lte => v <= l,
                    Operator::Eq => v == l,
                    Operator::Neq => v != l,
                    Operator::In | Operator::Out => {
                        let Some(u) = self.ubound.as_ref().and_then(|u| u.as_f64()) else {
                            return false;
                        };
                        let inside = v >= l && v <= u;
                        (op == Operator::In) == inside
                    }
                }
            }
        }
    }
}

impl Default for Attr {
    fn default() -> Self {
        Attr::init()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_surface() {
        let mut id = VarId::init();
        assert!(id.set_by_name("sysUpTime").is_ok());
        assert_eq!(id.get_name(), Some("sysUpTime"));
        assert_eq!(id.get_type(), Some(VarType::Long));
        assert!(!id.is_index_reqd());
        assert!(id.set_by_name("noSuch").is_err());
        assert!(id.set_num(51).is_ok());
        assert!(id.is_index_reqd());
        id.set_index(2);
        assert_eq!(id.key(), (51, 2));
        id.set_server("11.11.10.1".parse().unwrap());
        assert_eq!(id.server(), Some("11.11.10.1".parse().unwrap()));
    }

    #[test]
    fn attr_range_semantics() {
        let mut attr = Attr::init();
        attr.set_lbound(Value::Long(0));
        attr.set_ubound(Value::Long(20));
        attr.set_operator(Operator::In).unwrap();
        assert!(attr.validate().is_ok());
        assert!(attr.matches(&Value::Long(10)));
        assert!(attr.matches(&Value::Long(0)));
        assert!(attr.matches(&Value::Long(20)));
        assert!(!attr.matches(&Value::Long(21)));

        attr.set_operator(Operator::Out).unwrap();
        assert!(!attr.matches(&Value::Long(10)));
        assert!(attr.matches(&Value::Long(25)));
    }

    #[test]
    fn unary_operators() {
        let mut attr = Attr::init();
        attr.set_lbound(Value::Double(1.5));
        attr.set_operator(Operator::Gte).unwrap();
        assert!(attr.matches(&Value::Double(1.5)));
        assert!(attr.matches(&Value::Long(2)));
        assert!(!attr.matches(&Value::Double(1.49)));
        assert!(attr.validate().is_ok());

        // Binary without ubound fails validation.
        attr.set_operator(Operator::In).unwrap();
        assert!(attr.validate().is_err());
    }

    #[test]
    fn string_type_checking() {
        let mut attr = Attr::init();
        attr.set_lbound(Value::Str("eth0".into()));
        assert!(attr.set_operator(Operator::Gt).is_err());
        attr.set_operator(Operator::Eq).unwrap();
        assert!(attr.matches(&Value::Str("eth0".into())));
        assert!(!attr.matches(&Value::Str("wvlan0".into())));
        assert!(
            !attr.matches(&Value::Long(1)),
            "type mismatch never matches"
        );
    }

    #[test]
    fn operator_tags_roundtrip() {
        for op in [
            Operator::Gt,
            Operator::Gte,
            Operator::Lt,
            Operator::Lte,
            Operator::Eq,
            Operator::Neq,
            Operator::In,
            Operator::Out,
        ] {
            assert_eq!(Operator::from_tag(op.tag()), Some(op));
        }
        assert_eq!(Operator::from_tag("XX"), None);
    }
}
