//! The EEM variable catalog: the SNMP variables of Table 6.1 plus the
//! additional variables of Table 6.2.

use crate::value::VarType;

/// Static description of one EEM variable.
#[derive(Clone, Copy, Debug)]
pub struct VarSpec {
    /// Stable numeric id (the thesis's `comma_id_setnum` argument).
    pub num: u16,
    /// Variable name.
    pub name: &'static str,
    /// Value type.
    pub ty: VarType,
    /// Whether an index is required (per-interface `if*` variables).
    pub indexed: bool,
}

macro_rules! vars {
    ($($num:expr => $name:ident : $ty:ident $(, indexed=$idx:expr)? ;)*) => {
        /// The full variable catalog (Tables 6.1 and 6.2).
        pub const CATALOG: &[VarSpec] = &[
            $(VarSpec {
                num: $num,
                name: stringify!($name),
                ty: VarType::$ty,
                indexed: false $(|| $idx)?,
            },)*
        ];
    };
}

vars! {
    // Table 6.1: system group.
    1 => sysDescr: Str;
    2 => sysObjectID: Str;
    3 => sysUpTime: Long;
    4 => sysContact: Str;
    5 => sysName: Str;
    6 => sysLocation: Str;
    7 => sysServices: Long;
    // IP group.
    10 => ipInReceives: Long;
    11 => ipInHdrErrors: Long;
    12 => ipInAddrErrors: Long;
    13 => ipForwDatagrams: Long;
    14 => ipInUnknownProtos: Long;
    15 => ipInDiscards: Long;
    16 => ipInDelivers: Long;
    17 => ipOutRequests: Long;
    18 => ipOutDiscards: Long;
    19 => ipOutNoRoutes: Long;
    20 => ipRoutingDiscard: Long;
    // UDP group.
    25 => udpInDatagrams: Long;
    26 => udpNoPorts: Long;
    27 => udpInErrors: Long;
    28 => udpOutDatagrams: Long;
    // TCP group.
    30 => tcpRtoAlgorithm: Long;
    31 => tcpRtoMin: Long;
    32 => tcpRtoMax: Long;
    33 => tcpMaxConn: Long;
    34 => tcpActiveOpens: Long;
    35 => tcpPassiveOpens: Long;
    36 => tcpAttemptFails: Long;
    37 => tcpEstabResets: Long;
    38 => tcpCurrEstab: Long;
    39 => tcpInSegs: Long;
    40 => tcpOutSegs: Long;
    41 => tcpRetransSegs: Long;
    // Interface group (indexed by interface).
    50 => ifNumbers: Long;
    51 => ifIndex: Long, indexed=true;
    52 => ifDescr: Str, indexed=true;
    53 => ifType: Long, indexed=true;
    54 => ifMtu: Long, indexed=true;
    55 => ifSpeed: Long, indexed=true;
    56 => ifInOctets: Long, indexed=true;
    57 => ifInUcastPkts: Long, indexed=true;
    58 => ifInNUcastPkts: Long, indexed=true;
    59 => ifInDiscards: Long, indexed=true;
    60 => ifInErrors: Long, indexed=true;
    61 => ifInUnknownProtos: Long, indexed=true;
    62 => ifOutOctets: Long, indexed=true;
    63 => ifOutUcastPkts: Long, indexed=true;
    64 => ifOutNUcastPkts: Long, indexed=true;
    65 => ifOutDiscards: Long, indexed=true;
    66 => ifOutErrors: Long, indexed=true;
    67 => ifOutQLen: Long, indexed=true;
    // Table 6.2: additional EEM variables.
    80 => netLatency: Double;
    81 => avgInIPPkts: Double;
    82 => cpuLoadAvg: Double;
    83 => ethErrsAvg: Double;
    84 => ethInAvg: Double;
    85 => ethOutAvg: Double;
    86 => deviceList: Str;
    87 => bytes_rx: Long;
    88 => bytes_tx: Long;
}

/// Looks up a variable by numeric id.
pub fn by_num(num: u16) -> Option<&'static VarSpec> {
    CATALOG.iter().find(|v| v.num == num)
}

/// Looks up a variable by name.
pub fn by_name(name: &str) -> Option<&'static VarSpec> {
    CATALOG.iter().find(|v| v.name == name)
}

/// Well-known numeric id for `sysUpTime` (used by the Fig 6.2 example; the
/// thesis calls it `COMMA_SYSUPTIME`).
pub const COMMA_SYSUPTIME: u16 = 3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_tables_6_1_and_6_2() {
        // Spot-check presence of each group.
        for name in [
            "sysDescr",
            "sysUpTime",
            "ipInReceives",
            "ipOutRequests",
            "udpInDatagrams",
            "tcpRtoAlgorithm",
            "tcpCurrEstab",
            "tcpRetransSegs",
            "ifNumbers",
            "ifOutQLen",
            "netLatency",
            "cpuLoadAvg",
            "deviceList",
            "bytes_rx",
            "bytes_tx",
        ] {
            assert!(by_name(name).is_some(), "{name} missing");
        }
        assert!(CATALOG.len() >= 45, "catalog has {} vars", CATALOG.len());
    }

    #[test]
    fn nums_unique() {
        let mut nums: Vec<u16> = CATALOG.iter().map(|v| v.num).collect();
        nums.sort_unstable();
        nums.dedup();
        assert_eq!(nums.len(), CATALOG.len());
    }

    #[test]
    fn lookup_consistency() {
        for spec in CATALOG {
            assert_eq!(by_num(spec.num).unwrap().name, spec.name);
            assert_eq!(by_name(spec.name).unwrap().num, spec.num);
        }
        assert!(by_num(9999).is_none());
        assert!(by_name("noSuchVar").is_none());
    }

    #[test]
    fn indexed_flags() {
        assert!(by_name("ifInOctets").unwrap().indexed);
        assert!(!by_name("sysUpTime").unwrap().indexed);
        assert_eq!(by_num(COMMA_SYSUPTIME).unwrap().name, "sysUpTime");
    }
}
