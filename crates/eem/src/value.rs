//! EEM variable values and types (§6.3.1): LONG, DOUBLE, STRING.

use std::fmt;

/// The type of an EEM variable (the thesis's `comma_type_t` union tags).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VarType {
    /// Integer values (`LONG`).
    Long,
    /// Floating-point values (`DOUBLE`).
    Double,
    /// Text values (`STRING`).
    Str,
}

/// A variable value.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// Integer value.
    Long(i64),
    /// Floating-point value.
    Double(f64),
    /// Text value.
    Str(String),
}

impl Value {
    /// Returns the value's type.
    pub fn var_type(&self) -> VarType {
        match self {
            Value::Long(_) => VarType::Long,
            Value::Double(_) => VarType::Double,
            Value::Str(_) => VarType::Str,
        }
    }

    /// Numeric view (integers widen; strings have none).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Long(v) => Some(*v as f64),
            Value::Double(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// Encodes for the wire protocol.
    pub fn encode(&self) -> String {
        match self {
            Value::Long(v) => format!("L {v}"),
            Value::Double(v) => format!("D {v}"),
            Value::Str(v) => format!("S {v}"),
        }
    }

    /// Decodes a wire-encoded value.
    pub fn decode(s: &str) -> Option<Value> {
        let (tag, rest) = s.split_once(' ')?;
        match tag {
            "L" => rest.parse().ok().map(Value::Long),
            "D" => rest.parse().ok().map(Value::Double),
            "S" => Some(Value::Str(rest.to_string())),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Long(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v:.3}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip() {
        for v in [
            Value::Long(-42),
            Value::Double(3.25),
            Value::Str("lo0 eth0 wvlan0".to_string()),
        ] {
            assert_eq!(Value::decode(&v.encode()), Some(v));
        }
        assert_eq!(Value::decode("bogus"), None);
        assert_eq!(Value::decode("X 1"), None);
    }

    #[test]
    fn typing_and_numeric_view() {
        assert_eq!(Value::Long(5).var_type(), VarType::Long);
        assert_eq!(Value::Double(1.5).var_type(), VarType::Double);
        assert_eq!(Value::Str("x".into()).var_type(), VarType::Str);
        assert_eq!(Value::Long(5).as_f64(), Some(5.0));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
    }
}
