//! E01 — reproduction of the SP interface example (Fig 5.3).
//!
//! The thesis session connects to the SP on `eramosa`, reports the loaded
//! filters (`tcp`, `launcher`, `wsize`, `rdrop`) and their stream keys for
//! the simulated stream `11.11.10.99 7 -> 11.11.10.10 1169`, adds an
//! `rdrop` at 50%, and deletes the `wsize` service. This test drives the
//! same command sequence and checks the same observable state transitions.

use comma_repro::prelude::*;

fn engine() -> FilterEngine {
    // Nothing preloaded: the session must `load` its filters, as the user
    // on styx did.
    FilterEngine::new(standard_catalog(&[]))
}

fn exec(e: &mut FilterEngine, rng: &mut SmallRng, line: &str) -> String {
    comma_proxy::command::execute(e, SimTime::ZERO, rng, &NullMetrics, line)
}

/// Key lines listed under a filter's section of a report.
fn section(report: &str, filter: &str) -> Vec<String> {
    report
        .lines()
        .skip_while(|l| *l != filter)
        .skip(1)
        .take_while(|l| l.starts_with('\t'))
        .map(|l| l.to_string())
        .collect()
}

fn stream_packet(sport: u16, dport: u16, seq: u32) -> Packet {
    let mut seg = TcpSegment::new(sport, dport, seq, 0, TcpFlags::ACK);
    seg.payload = comma_rt::Bytes::from(vec![0u8; 100]);
    Packet::tcp(
        "11.11.10.99".parse().unwrap(),
        "11.11.10.10".parse().unwrap(),
        seg,
    )
}

#[test]
fn fig_5_3_session() {
    let mut e = engine();
    let mut rng = SmallRng::seed_from_u64(53);

    // Load the four filters of the session. `load` prints the registered
    // name on success (and only then).
    assert_eq!(exec(&mut e, &mut rng, "load tcp.so"), "tcp\n");
    assert_eq!(exec(&mut e, &mut rng, "load launcher.so"), "launcher\n");
    assert_eq!(exec(&mut e, &mut rng, "load wsize.so"), "wsize\n");
    assert_eq!(exec(&mut e, &mut rng, "load rdrop.so"), "rdrop\n");

    // The launcher watches the mobile's wild-card key and applies tcp +
    // wsize to new matching streams (lines 9-10 of the figure).
    assert_eq!(
        exec(
            &mut e,
            &mut rng,
            "add launcher 11.11.10.99 0 11.11.10.10 0 tcp wsize:scale:50"
        ),
        ""
    );

    // First packet of the stream instantiates the launcher, which installs
    // tcp and wsize on the exact key.
    let outs = e.process(
        SimTime::ZERO,
        &mut rng,
        &NullMetrics,
        stream_packet(7, 1169, 1000),
    );
    assert_eq!(outs.len(), 1);

    // Line 6: `report` shows each loaded filter and its keys.
    let report = exec(&mut e, &mut rng, "report");
    let expected_key = "11.11.10.99 7 -> 11.11.10.10 1169";
    assert!(report.contains("launcher\n"), "{report}");
    assert!(
        report.contains("\t11.11.10.99 0 -> 11.11.10.10 0"),
        "{report}"
    );
    // tcp and wsize each service the stream (both directions bound; the
    // reverse key sorts first).
    let tcp_keys = section(&report, "tcp");
    assert!(
        tcp_keys.iter().any(|k| k.contains(expected_key)),
        "{report}"
    );
    let wsize_keys = section(&report, "wsize");
    assert!(
        wsize_keys.iter().any(|k| k.contains(expected_key)),
        "{report}"
    );
    // rdrop is loaded but not applied to any stream (line 13).
    assert!(
        section(&report, "rdrop").is_empty(),
        "rdrop has no keys yet: {report}"
    );

    // Line 15: well-formed add with the drop percentage as extra argument.
    assert_eq!(
        exec(
            &mut e,
            &mut rng,
            "add rdrop 11.11.10.99 7 11.11.10.10 1169 50"
        ),
        ""
    );
    // The filter appears on the stream at its next packet.
    e.process(
        SimTime::ZERO,
        &mut rng,
        &NullMetrics,
        stream_packet(7, 1169, 1100),
    );
    let report = exec(&mut e, &mut rng, "report");
    assert!(
        section(&report, "rdrop")
            .iter()
            .any(|k| k.contains(expected_key)),
        "rdrop now services the stream: {report}"
    );

    // Line 27: delete the wsize service; afterwards (lines 30-34) wsize is
    // still loaded but services no streams.
    assert_eq!(
        exec(
            &mut e,
            &mut rng,
            "delete wsize 11.11.10.99 7 11.11.10.10 1169"
        ),
        ""
    );
    let report = exec(&mut e, &mut rng, "report wsize");
    assert_eq!(
        report, "wsize\n",
        "wsize has no associated streams: {report:?}"
    );

    // The other filters keep their bindings.
    let report = exec(&mut e, &mut rng, "report tcp");
    assert!(report.contains(expected_key), "{report}");
}

#[test]
fn rdrop_drops_half_the_stream() {
    // The session's purpose: a 50% packet dropper on the stream.
    let mut e = engine();
    let mut rng = SmallRng::seed_from_u64(54);
    exec(&mut e, &mut rng, "load rdrop.so");
    exec(
        &mut e,
        &mut rng,
        "add rdrop 11.11.10.99 7 11.11.10.10 1169 50",
    );
    let mut passed = 0;
    let n = 2000;
    for i in 0..n {
        let outs = e.process(
            SimTime::ZERO,
            &mut rng,
            &NullMetrics,
            stream_packet(7, 1169, i * 100),
        );
        passed += outs.len();
    }
    let rate = passed as f64 / n as f64;
    assert!((rate - 0.5).abs() < 0.05, "pass rate {rate}");
    assert_eq!(e.totals.drops + passed as u64, n as u64);
}

#[test]
fn unknown_library_files_fail_silently() {
    let mut e = engine();
    let mut rng = SmallRng::seed_from_u64(55);
    assert_eq!(exec(&mut e, &mut rng, "load nonexistent.so"), "");
    assert_eq!(
        exec(&mut e, &mut rng, "add nonexistent 0.0.0.0 0 0.0.0.0 0"),
        ""
    );
    assert_eq!(exec(&mut e, &mut rng, "report nonexistent"), "");
}
