//! E06/E07/E08 — the protocol-tuning services of §8.2 demonstrated
//! quantitatively: snoop on a lossy link, BSSP window prioritization, and
//! ZWSM disconnection management.

use comma_repro::prelude::*;

fn lossy(p: f64) -> LinkParams {
    LinkParams::wireless().with_loss(LossModel::Uniform { p })
}

/// Runs a 200 KB transfer over a lossy wireless link; returns (completion
/// seconds, sender timeouts).
fn run_lossy_transfer(seed: u64, loss: f64, with_snoop: bool) -> (f64, u64) {
    let sender = BulkSender::new((addrs::MOBILE, 9000), 200_000);
    // Era-faithful TCP (536-byte MSS, 1 s minimum RTO): the configuration
    // against which snoop's gains were reported.
    let mut world = CommaBuilder::new(seed)
        .tcp(TcpConfig::era_1998())
        .wireless(lossy(loss), lossy(loss / 4.0))
        .build(vec![Box::new(sender)], vec![Box::new(Sink::new(9000))]);
    world.sp("add tcp 0.0.0.0 0 11.11.10.10 9000");
    if with_snoop {
        world.sp("add snoop 0.0.0.0 0 11.11.10.10 9000");
    }
    world.attach_oracle();
    world.run_until(SimTime::from_secs(300));
    let sink = world.mobile_app_ids[0];
    let (bytes, finished) =
        world.mobile_app::<Sink, _>(sink, |s| (s.bytes_received, s.last_data_at));
    assert_eq!(
        bytes, 200_000,
        "transfer completed (snoop={with_snoop}, loss={loss})"
    );
    let timeouts = world.sim.with_node::<Host, _>(world.wired, |h| {
        h.socket_infos().iter().map(|s| s.stats.timeouts).sum()
    });
    world.assert_oracle_clean();
    (finished.expect("data arrived").as_secs_f64(), timeouts)
}

/// E06 — snoop hides wireless losses from the sender: transfers finish
/// substantially faster and with fewer end-to-end timeouts at 10% loss.
#[test]
fn snoop_beats_plain_tcp_on_lossy_link() {
    let (plain_t, plain_to) = run_lossy_transfer(61, 0.10, false);
    let (snoop_t, snoop_to) = run_lossy_transfer(61, 0.10, true);
    assert!(
        snoop_t * 1.5 < plain_t,
        "snoop {snoop_t:.1}s vs plain {plain_t:.1}s at 10% loss"
    );
    assert!(
        snoop_to < plain_to,
        "snoop timeouts {snoop_to} < plain {plain_to}"
    );
}

/// E06 control — at zero loss, snoop costs (almost) nothing.
#[test]
fn snoop_harmless_without_loss() {
    let (plain_t, _) = run_lossy_transfer(62, 0.0, false);
    let (snoop_t, _) = run_lossy_transfer(62, 0.0, true);
    assert!(
        snoop_t < plain_t * 1.15,
        "snoop {snoop_t:.2}s vs plain {plain_t:.2}s at 0% loss"
    );
}

/// E07 — BSSP prioritization: shrinking the advertised window of a
/// background stream shifts wireless bandwidth to the priority stream.
#[test]
fn wsize_prioritization_shifts_bandwidth() {
    fn run(seed: u64, scale_background: bool) -> (usize, usize) {
        let priority = BulkSender::new((addrs::MOBILE, 9001), 2_000_000);
        let background = BulkSender::new((addrs::MOBILE, 9002), 2_000_000);
        let mut world = CommaBuilder::new(seed).build(
            vec![Box::new(priority), Box::new(background)],
            vec![Box::new(Sink::new(9001)), Box::new(Sink::new(9002))],
        );
        world.sp("add tcp 0.0.0.0 0 11.11.10.10 0");
        if scale_background {
            world.sp("add wsize 0.0.0.0 0 11.11.10.10 9002 scale 10");
        }
        world.attach_oracle();
        // Measure mid-flight, while both streams still compete.
        world.run_until(SimTime::from_secs(10));
        let p = world.mobile_app::<Sink, _>(world.mobile_app_ids[0], |s| s.bytes_received);
        let b = world.mobile_app::<Sink, _>(world.mobile_app_ids[1], |s| s.bytes_received);
        world.assert_oracle_clean();
        (p, b)
    }

    let (p_fair, b_fair) = run(63, false);
    let (p_prio, b_prio) = run(63, true);
    // Unmanaged: roughly fair sharing.
    let fair_ratio = p_fair as f64 / b_fair.max(1) as f64;
    assert!(
        (0.5..2.0).contains(&fair_ratio),
        "fair split, got {fair_ratio:.2}"
    );
    // Managed: the priority stream gets the lion's share.
    assert!(
        p_prio as f64 > b_prio as f64 * 2.5,
        "priority {p_prio} vs background {b_prio}"
    );
    assert!(p_prio > p_fair, "priority stream strictly gains");
}

/// E08 — ZWSM disconnection management: with the service, a stream frozen
/// by a zero window resumes promptly after a 30 s disconnection; without
/// it, exponential backoff and slow start delay recovery.
#[test]
fn zwsm_recovers_faster_from_disconnection() {
    fn run(seed: u64, with_zwsm: bool) -> f64 {
        let sender = BulkSender::new((addrs::MOBILE, 9000), 1_500_000);
        let mut world =
            CommaBuilder::new(seed).build(vec![Box::new(sender)], vec![Box::new(Sink::new(9000))]);
        world.sp("add tcp 0.0.0.0 0 11.11.10.10 9000");
        if with_zwsm {
            world.sp("add wsize 0.0.0.0 0 11.11.10.10 9000 zwsm wireless.up");
        }
        world.attach_oracle();
        // Disconnect 3s in, reconnect at 33s.
        world.set_wireless_up_at(SimTime::from_secs(3), false);
        world.set_wireless_up_at(SimTime::from_secs(33), true);
        world.run_until(SimTime::from_secs(200));
        let sink = world.mobile_app_ids[0];
        let (bytes, finished) =
            world.mobile_app::<Sink, _>(sink, |s| (s.bytes_received, s.last_data_at));
        assert_eq!(
            bytes, 1_500_000,
            "transfer survives the disconnection (zwsm={with_zwsm})"
        );
        world.assert_oracle_clean();
        finished.expect("finished").as_secs_f64()
    }

    let without = run(64, false);
    let with = run(64, true);
    assert!(
        with + 5.0 < without,
        "zwsm {with:.1}s vs plain {without:.1}s end-to-end"
    );
}

/// The zero-window freeze itself: during the outage the ZWSM-managed
/// sender records freezes instead of congestion timeouts.
#[test]
fn zwsm_converts_timeouts_to_freezes() {
    let sender = BulkSender::new((addrs::MOBILE, 9000), 1_500_000);
    let mut world =
        CommaBuilder::new(65).build(vec![Box::new(sender)], vec![Box::new(Sink::new(9000))]);
    world.sp("add wsize 0.0.0.0 0 11.11.10.10 9000 zwsm wireless.up");
    world.attach_oracle();
    world.set_wireless_up_at(SimTime::from_secs(3), false);
    world.set_wireless_up_at(SimTime::from_secs(23), true);
    world.run_until(SimTime::from_secs(120));
    let (freezes, _timeouts) = world.sim.with_node::<Host, _>(world.wired, |h| {
        let infos = h.socket_infos();
        (
            infos
                .iter()
                .map(|s| s.stats.zero_window_freezes)
                .sum::<u64>(),
            infos.iter().map(|s| s.stats.timeouts).sum::<u64>(),
        )
    });
    assert!(freezes > 0, "the ZWSM put the sender into persist-freeze");
    world.assert_oracle_clean();
    // SimDuration imported for future tuning; silence unused warnings.
    let _ = SimDuration::from_secs(1);
}

/// Diagnostic (ignored): print snoop internals at 10% loss.
#[test]
#[ignore]
fn snoop_diagnostics() {
    use comma_filters::snoop::Snoop;
    use comma_proxy::ServiceProxy;
    let sender = BulkSender::new((addrs::MOBILE, 9000), 200_000);
    let mut world = CommaBuilder::new(61)
        .tcp(TcpConfig::era_1998())
        .wireless(lossy(0.10), lossy(0.025))
        .build(vec![Box::new(sender)], vec![Box::new(Sink::new(9000))]);
    world.sp("add tcp 0.0.0.0 0 11.11.10.10 9000");
    world.sp("add snoop 0.0.0.0 0 11.11.10.10 9000");
    world.run_until(SimTime::from_secs(5));
    let mid = world.sim.with_node::<ServiceProxy, _>(world.proxy, |sp| {
        sp.engine.instance_as::<Snoop>("snoop").map(|s| s.stats)
    });
    println!("snoop stats mid: {mid:?}");
    let live = world
        .sim
        .with_node::<ServiceProxy, _>(world.proxy, |sp| sp.engine.live_instances());
    println!("live instances at 5s: {live}");
    world.run_until(SimTime::from_secs(300));
    let stats = world.sim.with_node::<ServiceProxy, _>(world.proxy, |sp| {
        sp.engine.instance_as::<Snoop>("snoop").map(|s| s.stats)
    });
    println!("snoop stats: {stats:?}");
    let log = world
        .sim
        .with_node::<ServiceProxy, _>(world.proxy, |sp| sp.engine.log.clone());
    println!(
        "proxy log ({} lines): {:?}",
        log.len(),
        &log[..log.len().min(10)]
    );
    let sender_stats = world.sim.with_node::<Host, _>(world.wired, |h| {
        h.socket_infos().iter().map(|s| s.stats).collect::<Vec<_>>()
    });
    println!("sender: {sender_stats:?}");
    let sink = world.mobile_app_ids[0];
    let t = world.mobile_app::<Sink, _>(sink, |s| s.last_data_at);
    println!("finish: {t:?}");
    let drops = world.sim.channel(world.wireless_ch.0).stats.loss_drops;
    println!("wireless drops: {drops}");
}

/// Diagnostic (ignored): era-config timing without loss.
#[test]
#[ignore]
fn era_baseline_diagnostics() {
    let (t0, to0) = run_lossy_transfer(70, 0.0, false);
    println!("era 0% loss: {t0:.2}s timeouts={to0}");
    let (t5, to5) = run_lossy_transfer(70, 0.05, false);
    println!("era 5% loss: {t5:.2}s timeouts={to5}");
    let (t5s, to5s) = run_lossy_transfer(70, 0.05, true);
    println!("era 5% loss + snoop: {t5s:.2}s timeouts={to5s}");
}

/// Diagnostic (ignored): snoop progress trace at 10% loss.
#[test]
#[ignore]
fn snoop_progress_trace() {
    use comma_filters::snoop::Snoop;
    use comma_proxy::ServiceProxy;
    let sender = BulkSender::new((addrs::MOBILE, 9000), 200_000);
    let mut world = CommaBuilder::new(61)
        .tcp(TcpConfig::era_1998())
        .wireless(lossy(0.10), lossy(0.025))
        .build(vec![Box::new(sender)], vec![Box::new(Sink::new(9000))]);
    world.sp("add snoop 0.0.0.0 0 11.11.10.10 9000");
    for t in 1..=30u64 {
        world.run_until(SimTime::from_secs(t));
        let bytes = world.mobile_app::<Sink, _>(world.mobile_app_ids[0], |s| s.bytes_received);
        let (cwnd, wnd, flight) = world.sim.with_node::<Host, _>(world.wired, |h| {
            let c = h.connection(comma_tcp::SocketId(0)).unwrap();
            (c.cwnd(), c.snd_wnd(), c.flight_size())
        });
        let snoop = world.sim.with_node::<ServiceProxy, _>(world.proxy, |sp| {
            sp.engine.instance_as::<Snoop>("snoop").map(|s| s.stats)
        });
        println!("t={t}s sink={bytes} cwnd={cwnd} wnd={wnd} flight={flight} snoop={snoop:?}");
        if bytes >= 200_000 {
            break;
        }
    }
}
