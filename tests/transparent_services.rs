//! E04/E05 — the transparent stream services of Chapter 8 running end to
//! end over live TCP connections, including under wireless loss (which
//! forces the TTSF retransmission-replay machinery to work).

use comma_repro::prelude::*;
use comma_repro::filters::appdata::FrameParser;

/// E04 (Fig 8.3 as a service): the `removal` service drops low-importance
/// records in flight; the receiver sees a valid, reduced record stream and
/// both endpoints terminate cleanly — all over one un-split connection.
#[test]
fn removal_service_drops_records_transparently() {
    let sender = RecordSender::synthetic((addrs::MOBILE, 9000), 80, 300);
    let mut world = CommaBuilder::new(41).build(
        vec![Box::new(sender)],
        vec![Box::new(Sink::new(9000).with_capture(1 << 20))],
    );
    world.sp("add tcp 0.0.0.0 0 11.11.10.10 9000");
    world.sp("add removal 0.0.0.0 0 11.11.10.10 9000 2");
    world.attach_oracle();
    world.run_until(SimTime::from_secs(30));

    let done = world.wired_app::<RecordSender, _>(world.wired_app_ids[0], |s| s.done);
    assert!(
        done,
        "sender connection fully closed (FIN handled through the TTSF)"
    );

    let sink = world.mobile_app_ids[0];
    let capture = world.mobile_app::<Sink, _>(sink, |s| s.capture.clone());
    let mut parser = FrameParser::new();
    let frames = parser.push(&capture);
    assert_eq!(parser.pending(), 0, "no trailing garbage");
    // Importance cycles 0..=3 over 80 records: 40 have importance >= 2.
    assert_eq!(frames.len(), 40);
    assert!(frames.iter().all(|f| f.importance >= 2));
    // Record bodies arrive intact.
    for f in &frames {
        assert_eq!(f.body.len(), 300);
    }
    // The wireless hop carried roughly half the bytes.
    let sent = world.wired_app::<RecordSender, _>(world.wired_app_ids[0], |s| s.bytes_sent);
    let wireless = world.wireless_down_bytes() as usize;
    assert!(
        wireless < sent * 7 / 10,
        "wireless {wireless} vs sent {sent}: reduction visible"
    );
    world.assert_oracle_clean();
}

/// E05 under stress: packet compression with a bursty-lossy wireless link.
/// Retransmissions must replay identical transformed bytes or the
/// decompressor desynchronizes — exact delivery proves the edit map's
/// replay correctness.
#[test]
fn compression_survives_wireless_loss() {
    let loss = LossModel::Gilbert {
        p_good_to_bad: 0.02,
        p_bad_to_good: 0.3,
        loss_good: 0.005,
        loss_bad: 0.3,
    };
    let sender = BulkSender::new((addrs::MOBILE, 9000), 150_000)
        .with_pattern(|i| b"wireless networks vary widely. "[i % 31]);
    let mut world = CommaBuilder::new(42)
        .double_proxy(true)
        .wireless(
            LinkParams::wireless().with_loss(loss.clone()),
            LinkParams::wireless().with_loss(loss),
        )
        .build(
            vec![Box::new(sender)],
            vec![Box::new(Sink::new(9000).with_capture(150_000))],
        );
    world.sp("add tcp 0.0.0.0 0 11.11.10.10 9000");
    world.sp("add compress 0.0.0.0 0 11.11.10.10 9000 lzss");
    world.stub_sp("add decompress 0.0.0.0 0 11.11.10.10 9000");
    world.attach_oracle();
    world.run_until(SimTime::from_secs(120));

    let sink = world.mobile_app_ids[0];
    let capture = world.mobile_app::<Sink, _>(sink, |s| s.capture.clone());
    assert_eq!(capture.len(), 150_000, "full delivery despite loss");
    for (i, b) in capture.iter().enumerate() {
        assert_eq!(*b, b"wireless networks vary widely. "[i % 31], "byte {i}");
    }
    // Loss actually occurred (the test exercised the replay path).
    let drops = world.sim.channel(world.wireless_ch.0).stats.loss_drops;
    assert!(drops > 0, "the wireless link dropped packets: {drops}");
    world.assert_oracle_clean();
}

/// The data-type translation service (§8.3.3): colour images shrink to
/// monochrome in flight, other records pass untouched.
#[test]
fn translation_converts_data_types() {
    let sender = RecordSender::synthetic((addrs::MOBILE, 9000), 40, 600);
    let mut world = CommaBuilder::new(43).build(
        vec![Box::new(sender)],
        vec![Box::new(Sink::new(9000).with_capture(1 << 20))],
    );
    world.sp("add tcp 0.0.0.0 0 11.11.10.10 9000");
    world.sp("add translate 0.0.0.0 0 11.11.10.10 9000");
    world.attach_oracle();
    world.run_until(SimTime::from_secs(30));

    let sink = world.mobile_app_ids[0];
    let capture = world.mobile_app::<Sink, _>(sink, |s| s.capture.clone());
    let mut parser = FrameParser::new();
    let frames = parser.push(&capture);
    assert_eq!(
        frames.len(),
        40,
        "every record arrives (translation is lossless in count)"
    );
    use comma_filters::appdata::FrameKind;
    for f in &frames {
        match f.kind {
            FrameKind::ImageColor => panic!("colour images must have been translated"),
            FrameKind::ImageMono => assert_eq!(f.body.len(), 200, "600 → 200 bytes"),
            FrameKind::Telemetry => assert_eq!(f.body.len(), 600, "telemetry untouched"),
            _ => {}
        }
    }
    assert!(frames.iter().any(|f| f.kind == FrameKind::ImageMono));
    world.assert_oracle_clean();
}

/// TTSF accounting is visible through the proxy (what Kati displays).
#[test]
fn ttsf_stats_exposed_for_monitoring() {
    let sender = RecordSender::synthetic((addrs::MOBILE, 9000), 40, 300);
    let mut world =
        CommaBuilder::new(44).build(vec![Box::new(sender)], vec![Box::new(Sink::new(9000))]);
    world.sp("add removal 0.0.0.0 0 11.11.10.10 9000 2");
    world.attach_oracle();
    world.run_until(SimTime::from_secs(20));
    let (in_bytes, out_bytes, saved) = world.sim.with_node::<ServiceProxy, _>(world.proxy, |sp| {
        let ttsf = sp.engine.instance_as::<Ttsf>("removal").expect("ttsf live");
        (
            ttsf.stats.in_bytes,
            ttsf.stats.out_bytes,
            ttsf.bytes_saved(),
        )
    });
    assert!(in_bytes > out_bytes, "in={in_bytes} out={out_bytes}");
    assert!(saved > 0);
    world.assert_oracle_clean();
}
