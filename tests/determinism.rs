//! Cross-crate determinism: every random decision in the stack — TCP ISNs,
//! wireless loss, filter behavior — derives from the topology seed, so one
//! seed produces one byte-identical packet trace. This is what makes every
//! experiment in the reproduction replayable (and what the `comma_rt` PRNG
//! exists to guarantee: no ambient entropy anywhere in the workspace).

use comma_repro::prelude::*;
use comma_repro::rt::digest::Fnv1a;

/// Runs a lossy double-proxy compression transfer with observability
/// enabled and a fluid background population sharing the wireless
/// downlink; returns the full deterministic JSONL export.
fn run_obs_jsonl(seed: u64) -> String {
    let loss = LossModel::Gilbert {
        p_good_to_bad: 0.05,
        p_bad_to_good: 0.4,
        loss_good: 0.01,
        loss_bad: 0.3,
    };
    let sender = BulkSender::new((addrs::MOBILE, 9000), 60_000)
        .with_pattern(|i| b"determinism is a feature. "[i % 26]);
    let mut world = CommaBuilder::new(seed)
        .double_proxy(true)
        .observability(true)
        .wireless(
            LinkParams::wireless().with_loss(loss.clone()),
            LinkParams::wireless().with_loss(loss),
        )
        .build(
            vec![Box::new(sender)],
            vec![Box::new(Sink::new(9000))],
        );
    world.sim.attach_fluid(world.wireless_ch.0, FluidConfig::users(100), 99);
    world.sp("add compress 0.0.0.0 0 11.11.10.10 9000 lzss");
    world.stub_sp("add decompress 0.0.0.0 0 11.11.10.10 9000");
    world.run_until(SimTime::from_secs(90));
    world.obs.export_jsonl()
}

#[test]
fn same_seed_byte_identical_obs_export() {
    let a = run_obs_jsonl(4242);
    let b = run_obs_jsonl(4242);
    assert!(!a.is_empty());
    assert!(a.contains("link.offered"), "links instrumented");
    assert!(a.contains("tcp.cwnd"), "connections instrumented");
    assert!(a.contains("filter.pkts"), "filters instrumented");
    assert!(a.contains("link.fluid_active"), "fluid population instrumented");
    assert!(a.contains("link.fluid_residual_bps"), "fluid residual exported");
    assert!(a.contains("link.fluid_queue_bytes"), "fluid queue exported");
    assert!(
        !a.contains("\"wall\"") && !a.contains("wall."),
        "host wall-clock metrics are quarantined out of the export"
    );
    assert_eq!(
        a, b,
        "same seed must produce a byte-identical observability export"
    );
}

/// Runs a lossy double-proxy compression transfer and fingerprints the
/// full packet trace plus the delivered bytes.
fn run_fingerprint(seed: u64) -> (u64, u64, usize) {
    let loss = LossModel::Gilbert {
        p_good_to_bad: 0.05,
        p_bad_to_good: 0.4,
        loss_good: 0.01,
        loss_bad: 0.3,
    };
    let sender = BulkSender::new((addrs::MOBILE, 9000), 60_000)
        .with_pattern(|i| b"determinism is a feature. "[i % 26]);
    let mut world = CommaBuilder::new(seed)
        .double_proxy(true)
        .wireless(
            LinkParams::wireless().with_loss(loss.clone()),
            LinkParams::wireless().with_loss(loss),
        )
        .build(
            vec![Box::new(sender)],
            vec![Box::new(Sink::new(9000).with_capture(60_000))],
        );
    world.sim.trace.set_capture(true);
    world.sim.trace.set_max_entries(1 << 20);
    world.sp("add compress 0.0.0.0 0 11.11.10.10 9000 lzss");
    world.stub_sp("add decompress 0.0.0.0 0 11.11.10.10 9000");
    world.run_until(SimTime::from_secs(90));

    let mut trace_digest = Fnv1a::new();
    for line in world.sim.trace.render(|_| true) {
        trace_digest.update(line.as_bytes());
        trace_digest.update(b"\n");
    }
    let sink = world.mobile_app_ids[0];
    let capture = world.mobile_app::<Sink, _>(sink, |s| s.capture.clone());
    let mut data_digest = Fnv1a::new();
    data_digest.update(&capture);
    (trace_digest.finish(), data_digest.finish(), capture.len())
}

#[test]
fn same_seed_same_trace() {
    let (trace_a, data_a, len_a) = run_fingerprint(1207);
    let (trace_b, data_b, len_b) = run_fingerprint(1207);
    assert_eq!(len_a, 60_000, "transfer completes under loss");
    assert_eq!(len_a, len_b);
    assert_eq!(data_a, data_b, "delivered bytes identical");
    assert_eq!(
        trace_a, trace_b,
        "same seed must replay the identical packet-level trace"
    );
}

/// The experiment runner fans the 16-experiment table out across scoped
/// threads; the joined report must be byte-identical to a serial run of
/// the same table (each experiment owns its seeded simulator, and results
/// are collected by index, so parallelism cannot reorder or perturb it).
#[test]
fn parallel_experiment_report_matches_serial() {
    let serial = comma_bench::exps::run_all_serial();
    let parallel = comma_bench::exps::run_all();
    assert_eq!(serial.len(), comma_bench::exps::EXPERIMENTS.len());
    assert!(
        serial.iter().all(|block| !block.is_empty()),
        "every experiment renders a non-empty block"
    );
    assert_eq!(
        serial, parallel,
        "parallel experiment report must be byte-identical to serial"
    );
}

/// Golden cross-scheduler equivalence: these digests were recorded on the
/// pre-change `BinaryHeap` scheduler (seed 1207, the exact scenario of
/// [`run_fingerprint`]). The timer wheel must dispatch in the identical
/// `(time, seq)` order, so the packet trace and the delivered bytes must
/// reproduce them bit-for-bit — including with timer cancellation active,
/// because the cancelled timers were spurious fires that emitted no
/// packets and drew no randomness.
///
/// The trace digest was re-recorded when the conformance oracle flushed
/// out two sender bugs (persist probes consuming new sequence space past
/// the advertised window, and a missing go-back-N pullback on RTO): the
/// retransmission schedule legitimately changed, while the delivered
/// bytes — pure pattern data — did not.
#[test]
fn timer_wheel_trace_matches_binary_heap_golden() {
    let (trace, data, len) = run_fingerprint(1207);
    assert_eq!(len, 60_000, "transfer completes under loss");
    assert_eq!(
        data, 0x7d43_7a40_2447_006b,
        "delivered bytes must match the binary-heap golden digest"
    );
    assert_eq!(
        trace, 0xdc32_e7bc_c9f9_58d0,
        "packet trace must match the recorded golden digest"
    );
}

/// The many-flows scale workload (hundreds of outstanding connection
/// timers in the wheel at once) must export byte-identical observability
/// data for one seed, scheduler gauges included.
#[test]
fn scale_workload_same_seed_byte_identical_obs_export() {
    let a = comma_bench::scale::many_flows_obs_export(16, 16_384, 42);
    let b = comma_bench::scale::many_flows_obs_export(16, 16_384, 42);
    assert!(!a.is_empty());
    assert!(a.contains("queue_depth"), "scheduler gauges exported");
    assert!(a.contains("tcp.cwnd"), "connections instrumented");
    assert_eq!(
        a, b,
        "same seed must produce a byte-identical scale-workload export"
    );
}

/// Golden fault-plan determinism: the 8-flow scale workload under the
/// standard churn plan (reorder + duplicate + corrupt + flaps + bandwidth
/// steps) with the conformance oracle attached must reproduce this trace
/// digest bit-for-bit. Any change to the fault RNG streams, the churn
/// scheduler, or the per-channel seed derivation shows up here.
#[test]
fn churn_workload_trace_matches_golden() {
    let digest = comma_bench::scale::many_flows_churn_trace_digest(8, 8_192, 42);
    assert_eq!(
        digest, 0x11af_fce8_d107_14cf,
        "faulted run must match the recorded golden digest"
    );
}

#[test]
fn different_seed_different_trace() {
    let (trace_a, _, len_a) = run_fingerprint(1207);
    let (trace_b, _, len_b) = run_fingerprint(1208);
    assert_eq!(len_a, 60_000);
    assert_eq!(len_b, 60_000, "delivery is seed-independent");
    assert_ne!(
        trace_a, trace_b,
        "distinct seeds must take distinct loss/retransmission paths"
    );
}
