//! Scheduler-level guarantees of the timer-wheel event core: stale-timer
//! cancellation must shrink the event stream, and the many-flows scale
//! workload must stay deterministic.
//!
//! The exact-order equivalence with the old `BinaryHeap` scheduler is
//! pinned in `determinism.rs::timer_wheel_trace_matches_binary_heap_golden`
//! against digests recorded before the swap.

use comma_repro::prelude::*;

/// One bulk transfer over a bursty lossy wireless link: RTO restarts and
/// delayed-ACK rescheduling churn the timer queue.
fn retransmit_events(seed: u64) -> (u64, u64) {
    let loss = LossModel::Gilbert {
        p_good_to_bad: 0.05,
        p_bad_to_good: 0.4,
        loss_good: 0.01,
        loss_bad: 0.3,
    };
    let mut world = CommaBuilder::new(seed)
        .eem(false)
        .wireless(
            LinkParams::wireless().with_loss(loss.clone()),
            LinkParams::wireless().with_loss(loss),
        )
        .build(
            vec![Box::new(BulkSender::new((addrs::MOBILE, 9000), 65_536))],
            vec![Box::new(Sink::new(9000))],
        );
    world.run_until(SimTime::from_secs(300));
    let got = world.mobile_app::<Sink, _>(world.mobile_app_ids[0], |s| s.bytes_received);
    assert_eq!(got, 65_536, "transfer completes under loss");
    let cancelled = world.sim.sched_stats().cancelled;
    (world.sim.events_processed(), cancelled)
}

/// Before timer cancellation, every TCP effects batch re-armed the
/// connection timer and relied on deadline checks to ignore stale fires:
/// this exact scenario processed 615 events on the pre-change scheduler.
/// Cancelling superseded RTO/delayed-ACK timers must drop that count.
#[test]
fn stale_timer_cancellation_drops_event_count() {
    let (events, cancelled) = retransmit_events(77);
    assert!(
        events < 615,
        "expected fewer events than the pre-cancellation baseline of 615, got {events}"
    );
    assert!(
        cancelled > 0,
        "the retransmitting connection must actually cancel superseded timers"
    );
}

/// Acceptance gate: the 256-flow scale workload completes and two
/// same-seed runs produce byte-identical packet traces.
#[test]
fn many_flows_256_same_seed_trace_digests_match() {
    let a = comma_bench::scale::many_flows_trace_digest(256, 8_192, 42);
    let b = comma_bench::scale::many_flows_trace_digest(256, 8_192, 42);
    assert_eq!(
        a, b,
        "256-flow runs with one seed must replay the identical trace"
    );
}
