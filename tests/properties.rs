//! Property-based tests over the core data structures and codecs.

use bytes::Bytes;
use proptest::prelude::*;

use comma_filters::codec::{lzss_compress, lzss_decompress, rle_compress, rle_decompress};
use comma_filters::editmap::EditMap;
use comma_netsim::packet::{Packet, TcpFlags, TcpOption, TcpSegment, UdpDatagram};
use comma_netsim::wire;
use comma_tcp::buffer::RecvBuffer;
use comma_tcp::seq::{seq_diff, seq_le};

// ---------------------------------------------------------------------
// Edit map (the TTSF's core invariants).
// ---------------------------------------------------------------------

/// An edit script: (orig_len, out_len_or_identity).
fn edit_script() -> impl Strategy<Value = (u32, Vec<(u16, Option<u16>)>)> {
    (
        any::<u32>(),
        prop::collection::vec((1u16..3000, prop::option::of(0u16..3000)), 1..20),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Forward mapping is monotone (never decreasing) along the original
    /// stream, and the inverse of a fully covered frontier is the frontier.
    #[test]
    fn editmap_monotone_and_frontier_roundtrip((start, script) in edit_script()) {
        let mut map = EditMap::new(start);
        for (orig_len, out_len) in &script {
            let orig_len = *orig_len as u32;
            match out_len {
                None => {
                    // Identity edit.
                    map.push(orig_len, Bytes::from(vec![1u8; orig_len as usize]), true);
                }
                Some(n) => {
                    map.push(orig_len, Bytes::from(vec![2u8; *n as usize]), false);
                }
            }
        }
        // Monotonicity over sampled original positions.
        let total: u32 = script.iter().map(|(l, _)| *l as u32).sum();
        let mut prev = map.map_seq(start);
        let mut pos = start;
        for (orig_len, _) in &script {
            pos = pos.wrapping_add(*orig_len as u32);
            let mapped = map.map_seq(pos);
            prop_assert!(seq_le(prev, mapped), "mapping must not go backwards");
            prev = mapped;
        }
        // Frontier roundtrip.
        prop_assert_eq!(map.frontier_orig(), start.wrapping_add(total));
        prop_assert_eq!(map.inverse_ack(map.frontier_new()), map.frontier_orig());
    }

    /// The inverse ACK translation is conservative: it never claims more
    /// original bytes than the frontier, and translating any mapped
    /// position yields an original position at or before the source.
    #[test]
    fn editmap_inverse_conservative((start, script) in edit_script()) {
        let mut map = EditMap::new(start);
        for (orig_len, out_len) in &script {
            let ol = *orig_len as u32;
            match out_len {
                None => map.push(ol, Bytes::from(vec![1u8; ol as usize]), true),
                Some(n) => map.push(ol, Bytes::from(vec![2u8; *n as usize]), false),
            };
        }
        let frontier = map.frontier_orig();
        let new_span = seq_diff(map.frontier_new(), map.base_new());
        // Sample ACK positions across the output space.
        for k in 0..=10u32 {
            let ack = map.base_new().wrapping_add(new_span / 10 * k);
            let orig = map.inverse_ack(ack);
            prop_assert!(seq_le(orig, frontier), "inverse beyond frontier");
            // Mapping the result back never overshoots the ack.
            let remapped = map.map_seq(orig);
            prop_assert!(seq_le(remapped, ack), "round trip must stay conservative");
        }
    }

    /// Trimming never changes the mapping of retained positions.
    #[test]
    fn editmap_trim_preserves_mapping((start, script) in edit_script()) {
        let mut map = EditMap::new(start);
        for (orig_len, out_len) in &script {
            let ol = *orig_len as u32;
            match out_len {
                None => map.push(ol, Bytes::from(vec![1u8; ol as usize]), true),
                Some(n) => map.push(ol, Bytes::from(vec![2u8; *n as usize]), false),
            };
        }
        let probe_orig = map.frontier_orig();
        let before = map.map_seq(probe_orig);
        // Trim halfway through the output space.
        let half = map.base_new().wrapping_add(seq_diff(map.frontier_new(), map.base_new()) / 2);
        map.trim(half);
        prop_assert_eq!(map.map_seq(probe_orig), before);
    }
}

// ---------------------------------------------------------------------
// Codecs.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    #[test]
    fn lzss_roundtrips(data in prop::collection::vec(any::<u8>(), 0..8192)) {
        let packed = lzss_compress(&data);
        prop_assert_eq!(lzss_decompress(&packed).unwrap(), data);
    }

    #[test]
    fn rle_roundtrips(data in prop::collection::vec(any::<u8>(), 0..8192)) {
        let packed = rle_compress(&data);
        prop_assert_eq!(rle_decompress(&packed).unwrap(), data);
    }

    /// Compressible inputs (few distinct symbols, runs) really compress.
    #[test]
    fn lzss_compresses_redundancy(seedling in prop::collection::vec(0u8..4, 64..256)) {
        let mut data = Vec::new();
        for _ in 0..8 {
            data.extend_from_slice(&seedling);
        }
        let packed = lzss_compress(&data);
        prop_assert!(packed.len() < data.len());
    }
}

// ---------------------------------------------------------------------
// Wire format.
// ---------------------------------------------------------------------

fn arb_tcp_packet() -> impl Strategy<Value = Packet> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        any::<u16>(),
        0u8..0x40,
        prop::option::of(1u16..9000),
        prop::collection::vec(any::<u8>(), 0..1500),
        any::<u32>(),
        any::<u32>(),
    )
        .prop_map(
            |(seq, ack, sport, dport, window, flags, mss, payload, srcn, dstn)| {
                let mut seg = TcpSegment::new(sport, dport, seq, ack, TcpFlags(flags));
                seg.window = window;
                if let Some(m) = mss {
                    seg.options.push(TcpOption::Mss(m));
                }
                seg.payload = Bytes::from(payload);
                Packet::tcp(
                    comma_netsim::addr::Ipv4Addr(srcn),
                    comma_netsim::addr::Ipv4Addr(dstn),
                    seg,
                )
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn wire_roundtrip_tcp(pkt in arb_tcp_packet()) {
        let bytes = wire::encode(&pkt);
        prop_assert_eq!(bytes.len(), pkt.wire_len());
        let decoded = wire::decode(&bytes).unwrap();
        prop_assert_eq!(decoded, pkt);
    }

    #[test]
    fn wire_roundtrip_udp(
        sport in any::<u16>(),
        dport in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..1500),
    ) {
        let pkt = Packet::udp(
            comma_netsim::addr::Ipv4Addr(7),
            comma_netsim::addr::Ipv4Addr(9),
            UdpDatagram { src_port: sport, dst_port: dport, payload: Bytes::from(payload) },
        );
        let decoded = wire::decode(&wire::encode(&pkt)).unwrap();
        prop_assert_eq!(decoded, pkt);
    }

    /// Single-bit corruption anywhere in a TCP packet is detected by the
    /// IP or TCP checksum.
    #[test]
    fn wire_detects_bit_flips(pkt in arb_tcp_packet(), byte_sel in any::<prop::sample::Index>(), bit in 0u8..8) {
        let mut bytes = wire::encode(&pkt);
        let idx = byte_sel.index(bytes.len());
        bytes[idx] ^= 1 << bit;
        match wire::decode(&bytes) {
            Err(_) => {} // Detected.
            Ok(decoded) => {
                // Flips in the checksum-compensating positions of the
                // fragment/ttl fields cannot be constructed here, so any
                // successful decode must reproduce the original packet
                // only if the flip was masked by header padding. The TCP
                // header has no unchecked bytes, so equality must fail.
                prop_assert_ne!(decoded, pkt, "corruption silently accepted");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Receive-buffer reassembly.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// Arbitrary segmentation, duplication, and reordering of a stream
    /// reassembles to exactly the original bytes.
    #[test]
    fn recv_buffer_reassembles(
        len in 1usize..2000,
        cuts in prop::collection::vec(any::<prop::sample::Index>(), 1..20),
        order in any::<u64>(),
        dup_first in any::<bool>(),
    ) {
        let data: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
        // Build segments from cut points.
        let mut points: Vec<usize> = cuts.iter().map(|c| c.index(len)).collect();
        points.push(0);
        points.push(len);
        points.sort_unstable();
        points.dedup();
        let mut segs: Vec<(u32, Vec<u8>)> = points
            .windows(2)
            .map(|w| (w[0] as u32, data[w[0]..w[1]].to_vec()))
            .collect();
        if dup_first && !segs.is_empty() {
            segs.push(segs[0].clone());
        }
        // Deterministic shuffle from `order`.
        let mut state = order | 1;
        for i in (1..segs.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            segs.swap(i, j);
        }
        let mut rb = RecvBuffer::new(0, 65_535);
        let mut out = Vec::new();
        // Feed twice so late-arriving heads fill holes.
        for _ in 0..2 {
            for (seq, bytes) in &segs {
                rb.receive(*seq, bytes);
                out.extend_from_slice(&rb.take());
            }
        }
        prop_assert_eq!(out, data);
        prop_assert!(!rb.has_holes());
    }
}
