//! Property-based tests over the core data structures and codecs, running
//! on the seeded `comma_rt::prop` runner (≥ 100 generated cases each; a
//! failing case prints its `COMMA_PROP_REPLAY` seed).

use comma_repro::prelude::*;
use comma_repro::rt::prop::{gen, Runner};

use comma_repro::filters::codec::{lzss_compress, lzss_decompress, rle_compress, rle_decompress};
use comma_repro::netsim::fluid::{max_min_rates, FluidConfig, FluidState};
use comma_repro::netsim::wire;
use comma_repro::netsim::sim::PacketObserver;
use comma_repro::tcp::buffer::RecvBuffer;
use comma_repro::tcp::seq::{
    seq_diff, seq_ge, seq_gt, seq_in, seq_le, seq_lt, seq_max, seq_min,
};

// ---------------------------------------------------------------------
// Edit map (the TTSF's core invariants).
// ---------------------------------------------------------------------

/// An edit script: (start_seq, edits of (orig_len, out_len_or_identity)).
type EditScript = (u32, Vec<(u16, Option<u16>)>);

fn edit_script(rng: &mut SmallRng) -> EditScript {
    let start = rng.gen::<u32>();
    let script = gen::vec_of(rng, 1..20, |rng| {
        let orig_len = rng.gen_range(1u16..3000);
        let out_len = gen::option(rng, 0.5, |rng| rng.gen_range(0u16..3000));
        (orig_len, out_len)
    });
    (start, script)
}

fn build_map(start: u32, script: &[(u16, Option<u16>)]) -> EditMap {
    let mut map = EditMap::new(start);
    for (orig_len, out_len) in script {
        let ol = *orig_len as u32;
        match out_len {
            // Identity edit.
            None => map.push(ol, Bytes::from(vec![1u8; ol as usize]), true),
            Some(n) => map.push(ol, Bytes::from(vec![2u8; *n as usize]), false),
        };
    }
    map
}

/// Forward mapping is monotone (never decreasing) along the original
/// stream, and the inverse of a fully covered frontier is the frontier.
#[test]
fn editmap_monotone_and_frontier_roundtrip() {
    Runner::new("editmap_monotone_and_frontier_roundtrip")
        .cases(200)
        .run(edit_script, |(start, script)| {
            let map = build_map(*start, script);
            let total: u32 = script.iter().map(|(l, _)| *l as u32).sum();
            let mut prev = map.map_seq(*start);
            let mut pos = *start;
            for (orig_len, _) in script {
                pos = pos.wrapping_add(*orig_len as u32);
                let mapped = map.map_seq(pos);
                ensure!(seq_le(prev, mapped), "mapping went backwards at {pos}");
                prev = mapped;
            }
            ensure_eq!(map.frontier_orig(), start.wrapping_add(total));
            ensure_eq!(map.inverse_ack(map.frontier_new()), map.frontier_orig());
            Ok(())
        });
}

/// The inverse ACK translation is conservative: it never claims more
/// original bytes than the frontier, and translating any mapped position
/// yields an original position at or before the source.
#[test]
fn editmap_inverse_conservative() {
    Runner::new("editmap_inverse_conservative")
        .cases(200)
        .run(edit_script, |(start, script)| {
            let map = build_map(*start, script);
            let frontier = map.frontier_orig();
            let new_span = seq_diff(map.frontier_new(), map.base_new());
            // Sample ACK positions across the output space.
            for k in 0..=10u32 {
                let ack = map.base_new().wrapping_add(new_span / 10 * k);
                let orig = map.inverse_ack(ack);
                ensure!(seq_le(orig, frontier), "inverse beyond frontier");
                // Mapping the result back never overshoots the ack.
                let remapped = map.map_seq(orig);
                ensure!(seq_le(remapped, ack), "round trip must stay conservative");
            }
            Ok(())
        });
}

/// Trimming never changes the mapping of retained positions.
#[test]
fn editmap_trim_preserves_mapping() {
    Runner::new("editmap_trim_preserves_mapping")
        .cases(200)
        .run(edit_script, |(start, script)| {
            let mut map = build_map(*start, script);
            let probe_orig = map.frontier_orig();
            let before = map.map_seq(probe_orig);
            // Trim halfway through the output space.
            let half = map
                .base_new()
                .wrapping_add(seq_diff(map.frontier_new(), map.base_new()) / 2);
            map.trim(half);
            ensure_eq!(map.map_seq(probe_orig), before);
            Ok(())
        });
}

/// Wrap-aware sequence comparisons agree with plain offset order for any
/// base — including bases a few bytes before the 2³² boundary — as long as
/// both points sit within half the sequence space of each other.
#[test]
fn seq_arithmetic_respects_offset_order_across_wrap() {
    Runner::new("seq_arithmetic_respects_offset_order_across_wrap")
        .cases(300)
        .run(
            |rng| {
                // Half the cases pin the base right at the wrap boundary,
                // where naive `<` comparisons break.
                let base = if rng.gen::<bool>() {
                    u32::MAX - rng.gen_range(0u32..4096)
                } else {
                    rng.gen::<u32>()
                };
                let d1 = rng.gen_range(0u32..(1 << 30));
                let d2 = rng.gen_range(0u32..(1 << 30));
                (base, d1, d2)
            },
            |(base, d1, d2)| {
                let a = base.wrapping_add(*d1);
                let b = base.wrapping_add(*d2);
                ensure_eq!(seq_lt(a, b), d1 < d2);
                ensure_eq!(seq_le(a, b), d1 <= d2);
                ensure_eq!(seq_gt(a, b), d1 > d2);
                ensure_eq!(seq_ge(a, b), d1 >= d2);
                ensure_eq!(seq_max(a, b), base.wrapping_add(*d1.max(d2)));
                ensure_eq!(seq_min(a, b), base.wrapping_add(*d1.min(d2)));
                if d1 < d2 {
                    ensure_eq!(seq_diff(b, a), d2 - d1);
                    ensure!(seq_in(a, a, b), "lo is in [lo, hi)");
                    ensure!(!seq_in(b, a, b), "hi is not in [lo, hi)");
                }
                Ok(())
            },
        );
}

/// `EditMap::check_invariants` holds for arbitrary edit scripts whose
/// records tile across the 2³² boundary, and keeps holding after trimming
/// any prefix of the output space.
#[test]
fn editmap_invariants_hold_across_wrap_and_trim() {
    Runner::new("editmap_invariants_hold_across_wrap_and_trim")
        .cases(200)
        .run(
            |rng| {
                let (_, script) = edit_script(rng);
                // Start within ±4 KiB of the boundary so most maps wrap.
                let start = u32::MAX
                    .wrapping_sub(4096)
                    .wrapping_add(rng.gen_range(0u32..8192));
                let trim_tenths = rng.gen_range(0u32..11);
                (start, script, trim_tenths)
            },
            |(start, script, trim_tenths)| {
                let mut map = build_map(*start, script);
                if let Err(e) = map.check_invariants() {
                    ensure!(false, "fresh map: {e}");
                }
                let span = seq_diff(map.frontier_new(), map.base_new());
                let cut = map.base_new().wrapping_add(span / 10 * trim_tenths);
                map.trim(cut);
                if let Err(e) = map.check_invariants() {
                    ensure!(false, "after trim({cut}): {e}");
                }
                Ok(())
            },
        );
}

// ---------------------------------------------------------------------
// Conformance oracle on wrapped flows.
// ---------------------------------------------------------------------

/// Feeds one legal TCP exchange (handshake, chunked data, cumulative ACKs,
/// FIN) through the oracle as both transmit and delivery events.
fn play_exchange(o: &mut Oracle, isn_a: u32, isn_b: u32, data: &[u8], chunk: usize) {
    const A: comma_netsim::addr::Ipv4Addr = comma_netsim::addr::Ipv4Addr::new(10, 0, 0, 1);
    const B: comma_netsim::addr::Ipv4Addr = comma_netsim::addr::Ipv4Addr::new(10, 0, 0, 2);
    let t = SimTime::from_millis(1);
    let send = |o: &mut Oracle, from_a: bool, seq: u32, ack: u32, flags: TcpFlags, payload: &[u8]| {
        let (src, dst, sport, dport, tx, rx) = if from_a {
            (A, B, 1000, 2000, NodeId(0), NodeId(1))
        } else {
            (B, A, 2000, 1000, NodeId(1), NodeId(0))
        };
        let mut s = TcpSegment::new(sport, dport, seq, ack, flags);
        s.window = u16::MAX;
        s.payload = Bytes::from(payload.to_vec());
        let pkt = Packet::tcp(src, dst, s);
        o.on_tx(t, tx, &pkt);
        o.on_deliver(t, rx, &pkt);
    };
    send(o, true, isn_a, 0, TcpFlags::SYN, &[]);
    send(
        o,
        false,
        isn_b,
        isn_a.wrapping_add(1),
        TcpFlags::SYN | TcpFlags::ACK,
        &[],
    );
    send(
        o,
        true,
        isn_a.wrapping_add(1),
        isn_b.wrapping_add(1),
        TcpFlags::ACK,
        &[],
    );
    let mut off = 0usize;
    while off < data.len() {
        let end = (off + chunk).min(data.len());
        let seq = isn_a.wrapping_add(1).wrapping_add(off as u32);
        send(
            o,
            true,
            seq,
            isn_b.wrapping_add(1),
            TcpFlags::ACK,
            &data[off..end],
        );
        let ack = isn_a.wrapping_add(1).wrapping_add(end as u32);
        send(o, false, isn_b.wrapping_add(1), ack, TcpFlags::ACK, &[]);
        off = end;
    }
    let fin = isn_a.wrapping_add(1).wrapping_add(data.len() as u32);
    send(
        o,
        true,
        fin,
        isn_b.wrapping_add(1),
        TcpFlags::FIN | TcpFlags::ACK,
        &[],
    );
    send(
        o,
        false,
        isn_b.wrapping_add(1),
        fin.wrapping_add(1),
        TcpFlags::ACK,
        &[],
    );
}

/// Any legal exchange stays oracle-clean — in strict mode, with every
/// invariant armed — no matter where the ISNs sit relative to the wrap
/// point or how the data is chunked. The data deliberately straddles the
/// boundary in most cases.
#[test]
fn oracle_clean_on_wrapped_flows() {
    Runner::new("oracle_clean_on_wrapped_flows").cases(150).run(
        |rng| {
            // ISN within 2 KiB before the wrap (or anywhere, sometimes).
            let isn_a = if rng.gen_range(0u32..4) == 0 {
                rng.gen::<u32>()
            } else {
                u32::MAX - rng.gen_range(0u32..2048)
            };
            let isn_b = rng.gen::<u32>();
            let data = gen::bytes(rng, 1..4096);
            let chunk = rng.gen_range(1usize..1500);
            (isn_a, isn_b, data, chunk)
        },
        |(isn_a, isn_b, data, chunk)| {
            let mut o = Oracle::new(OracleConfig::new(vec![
                (NodeId(0), "10.0.0.1".parse().unwrap()),
                (NodeId(1), "10.0.0.2".parse().unwrap()),
            ]));
            play_exchange(&mut o, *isn_a, *isn_b, data, *chunk);
            let r = o.finish();
            ensure!(r.is_clean(), "wrapped flow flagged:\n{}", r.render());
            ensure_eq!(r.flows, 1);
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Codecs.
// ---------------------------------------------------------------------

#[test]
fn lzss_roundtrips() {
    Runner::new("lzss_roundtrips").cases(100).run(
        |rng| gen::bytes(rng, 0..8192),
        |data| {
            let packed = lzss_compress(data);
            ensure_eq!(&lzss_decompress(&packed).unwrap(), data);
            Ok(())
        },
    );
}

#[test]
fn rle_roundtrips() {
    Runner::new("rle_roundtrips").cases(100).run(
        |rng| gen::bytes(rng, 0..8192),
        |data| {
            let packed = rle_compress(data);
            ensure_eq!(&rle_decompress(&packed).unwrap(), data);
            Ok(())
        },
    );
}

/// Compressible inputs (few distinct symbols, repeated blocks) really
/// compress.
#[test]
fn lzss_compresses_redundancy() {
    Runner::new("lzss_compresses_redundancy").cases(100).run(
        |rng| gen::vec_of(rng, 64..256, |rng| rng.gen_range(0u8..4)),
        |seedling| {
            let mut data = Vec::new();
            for _ in 0..8 {
                data.extend_from_slice(seedling);
            }
            let packed = lzss_compress(&data);
            ensure!(packed.len() < data.len(), "{} !< {}", packed.len(), data.len());
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Wire format.
// ---------------------------------------------------------------------

fn arb_tcp_packet(rng: &mut SmallRng) -> Packet {
    let mut seg = TcpSegment::new(
        rng.gen(),
        rng.gen(),
        rng.gen(),
        rng.gen(),
        TcpFlags(rng.gen_range(0u8..0x40)),
    );
    seg.window = rng.gen();
    if let Some(m) = gen::option(rng, 0.5, |rng| rng.gen_range(1u16..9000)) {
        seg.options.push(TcpOption::Mss(m));
    }
    seg.payload = Bytes::from(gen::bytes(rng, 0..1500));
    Packet::tcp(
        comma_netsim::addr::Ipv4Addr(rng.gen()),
        comma_netsim::addr::Ipv4Addr(rng.gen()),
        seg,
    )
}

#[test]
fn wire_roundtrip_tcp() {
    Runner::new("wire_roundtrip_tcp")
        .cases(200)
        .run(arb_tcp_packet, |pkt| {
            let bytes = wire::encode(pkt);
            ensure_eq!(bytes.len(), pkt.wire_len());
            let decoded = wire::decode(&bytes).unwrap();
            ensure_eq!(&decoded, pkt);
            Ok(())
        });
}

#[test]
fn wire_roundtrip_udp() {
    Runner::new("wire_roundtrip_udp").cases(200).run(
        |rng| {
            (
                rng.gen::<u16>(),
                rng.gen::<u16>(),
                gen::bytes(rng, 0..1500),
            )
        },
        |(sport, dport, payload)| {
            let pkt = Packet::udp(
                comma_netsim::addr::Ipv4Addr(7),
                comma_netsim::addr::Ipv4Addr(9),
                UdpDatagram {
                    src_port: *sport,
                    dst_port: *dport,
                    payload: Bytes::from(payload.clone()),
                },
            );
            let decoded = wire::decode(&wire::encode(&pkt)).unwrap();
            ensure_eq!(decoded, pkt);
            Ok(())
        },
    );
}

/// Single-bit corruption anywhere in a TCP packet is detected by the IP
/// or TCP checksum.
#[test]
fn wire_detects_bit_flips() {
    Runner::new("wire_detects_bit_flips").cases(200).run(
        |rng| {
            let pkt = arb_tcp_packet(rng);
            let wire_len = pkt.wire_len();
            let idx = gen::index(rng, wire_len);
            let bit = rng.gen_range(0u8..8);
            (pkt, idx, bit)
        },
        |(pkt, idx, bit)| {
            let mut bytes = wire::encode(pkt);
            bytes[*idx] ^= 1 << bit;
            match wire::decode(&bytes) {
                Err(_) => {} // Detected.
                Ok(decoded) => {
                    // The TCP header has no unchecked bytes, so any decode
                    // that still succeeds must differ from the original.
                    ensure_ne!(&decoded, pkt, "corruption silently accepted");
                }
            }
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Receive-buffer reassembly (retransmit idempotence).
// ---------------------------------------------------------------------

/// Arbitrary segmentation, duplication, and reordering of a stream
/// reassembles to exactly the original bytes; duplicate (retransmitted)
/// segments never change the reassembled output.
#[test]
fn recv_buffer_reassembles() {
    Runner::new("recv_buffer_reassembles").cases(100).run(
        |rng| {
            let len = rng.gen_range(1usize..2000);
            let cuts = gen::vec_of(rng, 1..20, |rng| gen::index(rng, len));
            (len, cuts, rng.gen::<u64>(), rng.gen::<bool>())
        },
        |(len, cuts, order, dup_first)| {
            let len = *len;
            let data: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            // Build segments from cut points.
            let mut points: Vec<usize> = cuts.clone();
            points.push(0);
            points.push(len);
            points.sort_unstable();
            points.dedup();
            let mut segs: Vec<(u32, Vec<u8>)> = points
                .windows(2)
                .map(|w| (w[0] as u32, data[w[0]..w[1]].to_vec()))
                .collect();
            if *dup_first && !segs.is_empty() {
                segs.push(segs[0].clone());
            }
            // Deterministic shuffle from `order`.
            let mut state = order | 1;
            for i in (1..segs.len()).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let j = (state >> 33) as usize % (i + 1);
                segs.swap(i, j);
            }
            let mut rb = RecvBuffer::new(0, 65_535);
            let mut out = Vec::new();
            // Feed twice so late-arriving heads fill holes and every
            // segment is effectively retransmitted once.
            for _ in 0..2 {
                for (seq, bytes) in &segs {
                    rb.receive(*seq, bytes);
                    out.extend_from_slice(&rb.take());
                }
            }
            ensure_eq!(&out, &data);
            ensure!(!rb.has_holes(), "holes after full reassembly");
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Fluid background solver (hybrid fidelity, see DESIGN.md).
// ---------------------------------------------------------------------

/// Arbitrary solver input: background demands, link capacity, and the
/// number of always-backlogged (greedy) foreground participants.
fn arb_fluid_input(rng: &mut SmallRng) -> (Vec<u64>, u64, usize) {
    let demands = gen::vec_of(rng, 1..40, |rng| rng.gen_range(1u64..50_000));
    let capacity = rng.gen_range(1u64..2_000_000);
    let greedy = rng.gen_range(0usize..3);
    (demands, capacity, greedy)
}

/// No flow exceeds its demand, the rates never oversubscribe the link,
/// and with no greedy participant the solver is exactly work-conserving:
/// it hands out `min(total demand, capacity)` — in particular the link
/// saturates whenever any flow is left unsatisfied.
#[test]
fn fluid_rates_capped_by_demand_and_capacity() {
    Runner::new("fluid_rates_capped_by_demand_and_capacity")
        .cases(300)
        .run(arb_fluid_input, |(demands, capacity, greedy)| {
            let rates = max_min_rates(demands, *capacity, *greedy);
            ensure_eq!(rates.len(), demands.len());
            let mut sum = 0u64;
            for (r, d) in rates.iter().zip(demands) {
                ensure!(r <= d, "rate {r} exceeds demand {d}");
                sum += r;
            }
            ensure!(sum <= *capacity, "rates oversubscribe the link");
            if *greedy == 0 {
                let total: u64 = demands.iter().sum();
                ensure_eq!(sum, total.min(*capacity), "solver not work-conserving");
            }
            Ok(())
        });
}

/// Max-min fairness at the bottleneck: any flow left short of its demand
/// is bottlenecked at this link, so no other flow may hold more than that
/// flow's rate plus the one-unit integer-remainder slack.
#[test]
fn fluid_unsatisfied_flows_bottlenecked_at_link() {
    Runner::new("fluid_unsatisfied_flows_bottlenecked_at_link")
        .cases(300)
        .run(arb_fluid_input, |(demands, capacity, greedy)| {
            let rates = max_min_rates(demands, *capacity, *greedy);
            for (i, (r, d)) in rates.iter().zip(demands).enumerate() {
                if r < d {
                    for (j, other) in rates.iter().enumerate() {
                        ensure!(
                            j == i || *other <= r + 1,
                            "flow {j} ({other} bps) outranks unsatisfied flow {i} ({r} bps)"
                        );
                    }
                }
            }
            Ok(())
        });
}

/// A departure never decreases any remaining flow's rate — freed capacity
/// only redistributes upward (the invariant that lets epochs re-solve in
/// place without transient rate dips).
#[test]
fn fluid_departures_never_decrease_remaining_rates() {
    Runner::new("fluid_departures_never_decrease_remaining_rates")
        .cases(300)
        .run(
            |rng| {
                let (demands, capacity, greedy) = arb_fluid_input(rng);
                let leave = gen::index(rng, demands.len());
                (demands, capacity, greedy, leave)
            },
            |(demands, capacity, greedy, leave)| {
                let before = max_min_rates(demands, *capacity, *greedy);
                let mut rest = demands.clone();
                rest.remove(*leave);
                let after = max_min_rates(&rest, *capacity, *greedy);
                let mut j = 0usize;
                for (i, b) in before.iter().enumerate() {
                    if i == *leave {
                        continue;
                    }
                    ensure!(
                        after[j] >= *b,
                        "departure decreased flow {i}: {b} -> {}",
                        after[j]
                    );
                    j += 1;
                }
                Ok(())
            },
        );
}

/// The per-link epoch schedule — epoch times, active populations, and
/// solved aggregate rates — is a pure function of the seed.
#[test]
fn fluid_epoch_schedule_deterministic_per_seed() {
    Runner::new("fluid_epoch_schedule_deterministic_per_seed")
        .cases(50)
        .run(
            |rng| (rng.gen::<u64>(), rng.gen_range(2usize..200)),
            |(seed, users)| {
                let trace = |seed: u64| {
                    let mut st = FluidState::new(FluidConfig::users(*users), seed);
                    let mut now = SimTime::ZERO;
                    let mut out = Vec::new();
                    for _ in 0..50 {
                        let next = st.epoch(now, 8_000_000, 131_072);
                        out.push((now.as_micros(), st.active_flows(), st.bg_rate_bps()));
                        match next {
                            Some(t) => now = t,
                            None => break,
                        }
                    }
                    out
                };
                let a = trace(*seed);
                ensure_eq!(a, trace(*seed), "same seed diverged");
                ensure!(a.len() > 1, "no epochs scheduled");
                Ok(())
            },
        );
}

// ---------------------------------------------------------------------
// Observability histograms (comma-obs).
// ---------------------------------------------------------------------

/// Bucket counts always sum to the sample count, for arbitrary bounds and
/// samples (including values past the last bound, which land in the
/// overflow bucket), and min/max/sum stay consistent.
#[test]
fn histogram_bucket_counts_sum_to_sample_count() {
    use comma_repro::obs::Histogram;
    Runner::new("histogram_bucket_counts_sum_to_sample_count")
        .cases(200)
        .run(
            |rng| {
                let mut bounds = gen::vec_of(rng, 1..12, |rng| rng.gen_range(1u64..1_000_000));
                bounds.sort_unstable();
                bounds.dedup();
                let samples = gen::vec_of(rng, 0..200, |rng| rng.gen_range(0u64..2_000_000));
                (bounds, samples)
            },
            |(bounds, samples)| {
                let mut h = Histogram::new(bounds);
                for &v in samples {
                    h.record(v);
                }
                let bucket_sum: u64 = h.counts().iter().sum();
                ensure_eq!(bucket_sum, samples.len() as u64);
                ensure_eq!(h.count(), samples.len() as u64);
                ensure_eq!(h.sum(), samples.iter().sum::<u64>());
                ensure_eq!(h.min(), samples.iter().min().copied());
                ensure_eq!(h.max(), samples.iter().max().copied());
                ensure_eq!(h.counts().len(), h.bounds().len() + 1, "overflow bucket");
                Ok(())
            },
        );
}
