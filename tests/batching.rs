//! Scalar-vs-batched dispatch equivalence: the batched filter/engine API
//! must be observationally identical to per-packet dispatch — same
//! survivors (byte-for-byte on the wire), same drops, same engine log,
//! same RNG draw order — for any multi-flow interleaving at any batch
//! depth, and the simulator's opt-in delivery coalescing must preserve
//! delivered application bytes and stay conformance-oracle clean.

use comma_repro::prelude::*;
use comma_repro::rt::prop::{gen, Runner};

use comma_repro::netsim::packet::IpPayload;
use comma_repro::netsim::wire;

/// The reference chain: two rewriting filters, one stateful observer, and
/// exactly one RNG-consuming filter (`rdrop`). Batched dispatch preserves
/// per-packet draw order only while a single filter consumes randomness,
/// which every production chain satisfies.
const CHAIN: &[(&str, &[&str])] = &[
    ("tcp", &[]),
    ("snoop", &[]),
    ("wsize", &["scale", "90"]),
    ("rdrop", &["30"]),
];

fn build_engine() -> FilterEngine {
    let mut engine = FilterEngine::new(standard_catalog(ALL_FILTERS));
    for (name, args) in CHAIN {
        engine
            .register(
                WildKey::ANY,
                name,
                args.iter().map(|a| a.to_string()).collect(),
            )
            .expect("register chain filter");
    }
    engine
}

/// One generated workload step: which flow sends, how much, and whether
/// the segment closes the flow.
#[derive(Debug, Clone)]
struct Step {
    flow: usize,
    len: usize,
    fin: bool,
}

/// Builds the packet sequence for a workload: per-flow seq cursors, a SYN
/// opening each flow, ACK data segments, and occasional FINs (which also
/// exercise the engine's lifecycle batch cuts).
fn build_packets(steps: &[Step]) -> Vec<Packet> {
    let src: comma_repro::netsim::addr::Ipv4Addr = "11.11.10.99".parse().unwrap();
    let dst: comma_repro::netsim::addr::Ipv4Addr = "11.11.10.10".parse().unwrap();
    let mut seqs = [0u32; 8];
    let mut opened = [false; 8];
    let mut pkts = Vec::with_capacity(steps.len() + 8);
    for step in steps {
        let sport = 5000 + step.flow as u16;
        if !opened[step.flow] {
            opened[step.flow] = true;
            pkts.push(Packet::tcp(
                src,
                dst,
                TcpSegment::new(sport, 9000, seqs[step.flow], 0, TcpFlags::SYN),
            ));
            seqs[step.flow] = seqs[step.flow].wrapping_add(1);
        }
        let flags = if step.fin {
            TcpFlags::FIN | TcpFlags::ACK
        } else {
            TcpFlags::ACK
        };
        let mut seg = TcpSegment::new(sport, 9000, seqs[step.flow], 77, flags);
        seg.payload = Bytes::from(vec![(step.flow as u8) ^ 0x5a; step.len]);
        seqs[step.flow] = seqs[step.flow].wrapping_add(step.len as u32);
        pkts.push(Packet::tcp(src, dst, seg));
    }
    pkts
}

/// Everything observable about a dispatch run, for exact comparison.
#[derive(PartialEq, Debug)]
struct RunResult {
    /// Wire encodings of the forwarded packets, in order.
    survivors: Vec<Vec<u8>>,
    dropped: usize,
    total_pkts: u64,
    log: Vec<String>,
}

fn encode_all(pkts: &[Packet]) -> Vec<Vec<u8>> {
    pkts.iter().map(wire::encode).collect()
}

fn run_scalar(pkts: Vec<Packet>, seed: u64) -> RunResult {
    let mut engine = build_engine();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut survivors = Vec::new();
    let mut dropped = 0usize;
    for pkt in pkts {
        let outs = engine.process(SimTime::ZERO, &mut rng, &NullMetrics, pkt);
        if outs.is_empty() {
            dropped += 1;
        }
        survivors.extend(outs);
    }
    RunResult {
        survivors: encode_all(&survivors),
        dropped,
        total_pkts: engine.totals.pkts,
        log: engine.log.lines().to_vec(),
    }
}

fn run_batched(pkts: Vec<Packet>, seed: u64, depth: usize) -> RunResult {
    let mut engine = build_engine();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut survivors = Vec::new();
    let mut dropped = 0usize;
    let mut input = Vec::with_capacity(depth);
    let mut out = Vec::new();
    let mut dropped_out = Vec::new();
    for chunk in pkts.chunks(depth) {
        input.extend(chunk.iter().cloned());
        engine.process_batch(
            SimTime::ZERO,
            &mut rng,
            &NullMetrics,
            &mut input,
            &mut out,
            &mut dropped_out,
        );
        dropped += dropped_out.len();
        dropped_out.clear();
        survivors.append(&mut out);
    }
    RunResult {
        survivors: encode_all(&survivors),
        dropped,
        total_pkts: engine.totals.pkts,
        log: engine.log.lines().to_vec(),
    }
}

/// Random multi-flow interleavings dispatch identically — survivors,
/// drops, engine log, and counters — through the scalar path and through
/// `process_batch` at every required depth.
#[test]
fn batched_dispatch_matches_scalar_on_random_interleavings() {
    Runner::new("batched_dispatch_matches_scalar_on_random_interleavings")
        .cases(60)
        .run(
            |rng| {
                let flows = rng.gen_range(1usize..5);
                let steps = gen::vec_of(rng, 1..120, |rng| Step {
                    flow: rng.gen_range(0..flows),
                    len: rng.gen_range(0usize..300),
                    fin: rng.gen_range(0u32..40) == 0,
                });
                (steps, rng.gen::<u64>())
            },
            |(steps, seed)| {
                let pkts = build_packets(steps);
                let reference = run_scalar(pkts.clone(), *seed);
                for depth in [1usize, 4, 16, 64] {
                    let batched = run_batched(pkts.clone(), *seed, depth);
                    ensure_eq!(
                        reference.survivors.len(),
                        batched.survivors.len(),
                        "survivor count diverged at depth {depth}"
                    );
                    ensure!(
                        reference == batched,
                        "batched dispatch diverged from scalar at depth {depth}"
                    );
                }
                Ok(())
            },
        );
}

/// A mixed batch that straddles flow boundaries, lifecycle flags, and
/// non-keyed (ICMP) traffic still matches the scalar path — the run
/// formation cuts (key change, SYN/FIN, passthrough) are invisible to the
/// observable outcome.
#[test]
fn batch_run_cuts_are_observationally_invisible() {
    let src: comma_repro::netsim::addr::Ipv4Addr = "11.11.10.99".parse().unwrap();
    let dst: comma_repro::netsim::addr::Ipv4Addr = "11.11.10.10".parse().unwrap();
    let mut pkts = build_packets(&[
        Step { flow: 0, len: 100, fin: false },
        Step { flow: 0, len: 200, fin: false },
        Step { flow: 1, len: 50, fin: false },
        Step { flow: 0, len: 80, fin: true },
        Step { flow: 1, len: 10, fin: false },
    ]);
    // Splice a non-keyed packet mid-stream: it must pass through in order.
    pkts.insert(
        3,
        Packet::icmp(
            src,
            dst,
            comma_repro::netsim::packet::IcmpMessage::EchoRequest {
                id: 9,
                seq: 1,
                payload: Bytes::from(vec![1u8; 32]),
            },
        ),
    );
    let reference = run_scalar(pkts.clone(), 7);
    for depth in [2usize, 3, 64] {
        assert_eq!(
            run_batched(pkts.clone(), 7, depth),
            reference,
            "depth {depth} diverged"
        );
    }
    // The ICMP splice really survived (passthrough, not drop).
    let icmp_survivors = reference
        .survivors
        .iter()
        .filter(|bytes| {
            wire::decode(bytes)
                .map(|p| matches!(p.body, IpPayload::Icmp(_)))
                .unwrap_or(false)
        })
        .count();
    assert_eq!(icmp_survivors, 1);
}

// ---------------------------------------------------------------------
// Simulator-level delivery coalescing.
// ---------------------------------------------------------------------

fn transfer_with_coalescing(coalesce: bool, faults: bool) -> (usize, u64, u64) {
    let mut world = CommaBuilder::new(11).eem(false).build(
        vec![Box::new(BulkSender::new((addrs::MOBILE, 9000), 300_000))],
        vec![Box::new(Sink::new(9000))],
    );
    world.sp("add tcp 0.0.0.0 0 11.11.10.10 9000");
    world.sp("add snoop 0.0.0.0 0 11.11.10.10 9000");
    world.sp("add wsize 0.0.0.0 0 11.11.10.10 9000 scale 90");
    world.sp("add tcp 0.0.0.0 0 11.11.10.10 9000");
    if faults {
        // Deterministic fault churn on the wireless downlink: delay jitter
        // plus duplication, seeded independently of the link RNG.
        let cfg = comma_repro::netsim::fault::FaultConfig {
            reorder_p: 0.02,
            reorder_extra: SimDuration::from_millis(3),
            duplicate_p: 0.01,
            ..Default::default()
        };
        world
            .sim
            .install_link_faults(comma_repro::netsim::link::ChannelId(2), cfg, 99);
    }
    world.attach_oracle();
    world.sim.set_coalesce_delivery(coalesce);
    world.run_until(SimTime::from_secs(120));
    world.assert_oracle_clean();
    let received = world.mobile_app::<Sink, _>(world.mobile_app_ids[0], |s| s.bytes_received);
    let (tx, rx) = (world.sim.trace.counters.tx, world.sim.trace.counters.rx);
    (received, tx, rx)
}

/// Delivery coalescing is transparent end to end: the full wired→wireless
/// transfer through the 4-filter proxy delivers the same bytes, moves the
/// same packet counts, and stays conformance-oracle clean with batching
/// on and off.
#[test]
fn sim_delivery_coalescing_preserves_transfer() {
    let scalar = transfer_with_coalescing(false, false);
    let batched = transfer_with_coalescing(true, false);
    assert_eq!(scalar.0, 300_000, "transfer must complete");
    assert_eq!(scalar, batched, "coalesced run diverged from scalar run");
}

/// Same transparency under deterministic link-fault churn (reordering and
/// duplication on the wireless downlink): the oracle stays clean and the
/// delivered byte count matches the scalar schedule.
#[test]
fn sim_delivery_coalescing_preserves_transfer_under_faults() {
    let scalar = transfer_with_coalescing(false, true);
    let batched = transfer_with_coalescing(true, true);
    assert_eq!(scalar.0, 300_000, "faulted transfer must complete");
    assert_eq!(scalar, batched, "coalesced faulted run diverged");
}
