//! The `comma-mc` interleaving checker as a tier-1 regression surface:
//! fingerprint determinism, snapshot/restore transparency, a debug-sized
//! exhaustive exploration, and the pinned known-bug rediscovery.
//!
//! The full shipped-bounds exploration (50k+ states) runs release-mode in
//! `./scripts/ci.sh mc`; the in-tree tests use reduced configurations so
//! the debug workspace suite stays fast.

use comma_repro::mc::{explore, replay_mc_trace, McConfig};
use comma_repro::mc::scenario::build_scenario;
use comma_repro::netsim::sim::McAction;
use comma_repro::prelude::*;

/// Debug-sized exhaustive configuration: both flows, no fault budget.
fn reduced() -> McConfig {
    McConfig {
        max_faults: 0,
        ..McConfig::default()
    }
}

/// The state fingerprint is a pure function of the decision history: two
/// independently built worlds driven through the same schedule report the
/// same hash at every step. This is what makes the visited set sound — a
/// fingerprint that leaked allocation addresses, map iteration order, or
/// slot numbering would diverge here.
#[test]
fn mc_state_hash_deterministic_across_same_seed_runs() {
    let cfg = reduced();
    let mut a = build_scenario(&cfg);
    let mut b = build_scenario(&cfg);
    assert_eq!(a.sim.state_hash(), b.sim.state_hash(), "initial states differ");
    for step in 0..60 {
        let options = a.sim.mc_options();
        if options.is_empty() {
            assert!(b.sim.mc_options().is_empty(), "worlds quiesce together");
            break;
        }
        // Perturb the fire order a little so the property is checked off
        // the default path too.
        let index = if options.len() > 1 { step % 2 } else { 0 };
        a.sim.mc_step(index, McAction::Deliver).unwrap();
        b.sim.mc_step(index, McAction::Deliver).unwrap();
        assert_eq!(
            a.sim.state_hash(),
            b.sim.state_hash(),
            "fingerprints diverged at step {step}"
        );
    }
}

/// Snapshot → restore → re-snapshot is fingerprint-transparent, and the
/// copy stays in lockstep with the original when both are driven through
/// the same decisions afterward.
#[test]
fn mc_state_hash_survives_snapshot_restore_round_trip() {
    let cfg = reduced();
    let mut world = build_scenario(&cfg);
    for _ in 0..30 {
        if world.sim.mc_options().is_empty() {
            break;
        }
        world.sim.mc_step(0, McAction::Deliver).unwrap();
    }
    let mut snap = world.sim.snapshot().expect("snapshot");
    assert_eq!(snap.state_hash(), world.sim.state_hash());
    let again = snap.snapshot().expect("re-snapshot");
    assert_eq!(again.state_hash(), world.sim.state_hash());
    for step in 0..15 {
        if world.sim.mc_options().is_empty() {
            break;
        }
        world.sim.mc_step(0, McAction::Deliver).unwrap();
        snap.mc_step(0, McAction::Deliver).unwrap();
        assert_eq!(
            world.sim.state_hash(),
            snap.state_hash(),
            "snapshot diverged from original at step {step}"
        );
    }
}

/// A debug-sized exhaustive exploration of the two-flow scenario finishes
/// clean, and fingerprint pruning collapses at least 30% of the state
/// arrivals (independent flows commute; conflated schedules must conflate).
#[test]
fn mc_reduced_exploration_exhausts_clean_with_dedup() {
    let report = explore(&reduced());
    assert!(
        report.exhausted_clean(),
        "reduced exploration not clean: {}",
        report.render()
    );
    assert!(report.states_explored > 100, "{}", report.render());
    assert_eq!(report.depth_bound_hits, 0, "{}", report.render());
    assert!(
        report.dedup_ratio() >= 0.30,
        "dedup ratio {:.3} < 0.30 — an arrival-history artifact is leaking \
         into a state digest: {}",
        report.dedup_ratio(),
        report.render()
    );
}

/// Pinned known-bug rediscovery (the shipped-bounds sweep found no organic
/// counterexample, so this mutation is the checker's teeth): arming
/// `Ttsf::mutate_skip_ack_translation` mid-stream must surface a
/// delivered-ACK regression, and the minimized counterexample must replay.
#[test]
fn regression_mc_rediscovers_skipped_ack_translation() {
    let cfg = McConfig {
        max_faults: 0,
        mutate_skip_ack_translation: true,
        ..McConfig::default()
    };
    let report = explore(&cfg);
    let v = report
        .violation
        .as_ref()
        .expect("mutation must be rediscovered");
    assert!(
        v.detail.contains("delivered-ack-regression"),
        "unexpected violation kind: {}",
        v.detail
    );
    assert!(v.minimized.decisions.len() <= v.trace.decisions.len());
    let replayed = replay_mc_trace(&cfg, &v.minimized);
    let (step, detail) = replayed
        .violation
        .expect("minimized counterexample must replay to a violation");
    assert_eq!(step, v.minimized.decisions.len());
    assert!(detail.contains("delivered-ack-regression"), "{detail}");
}

/// Without the mutation the same configuration is clean — the rediscovery
/// above is the mutation's doing, not a latent bug in the scenario.
#[test]
fn mc_mutation_config_clean_when_unarmed() {
    let report = explore(&reduced());
    assert!(report.violation.is_none(), "{}", report.render());
}

/// The Kati shell's `mc` subcommand runs a self-contained exploration and
/// reports coverage; bad arguments get usage instead of a panic.
#[test]
fn kati_mc_subcommand_reports_coverage() {
    let mut world = CommaBuilder::new(7).eem(false).build(
        vec![Box::new(BulkSender::new((addrs::MOBILE, 9000), 4_000))],
        vec![Box::new(Sink::new(9000))],
    );
    let mut kati = Kati::new(world.proxy);
    let out = kati.exec(&mut world.sim, "mc flows 1 faults 0 steps 20000");
    assert!(out.contains("explored"), "unexpected mc output: {out}");
    assert!(out.contains("no violations"), "{out}");
    let usage = kati.exec(&mut world.sim, "mc bogus");
    assert!(usage.starts_with("usage: mc"), "{usage}");
    assert!(kati.exec(&mut world.sim, "help").contains("mc [seed N]"));
}
