//! E15 — the filter-queue ordering semantics of §5.2 / Fig 5.2.
//!
//! The in queue runs top (highest priority) to bottom and is read-only;
//! the out queue runs bottom to top, so higher-priority filters modify
//! last and can override lower-priority changes. A drop mid-queue ends the
//! packet's processing. Capability violations are blocked by the engine
//! (Chapter 9).

use std::any::Any;
use std::cell::RefCell;
use std::rc::Rc;

use comma_repro::prelude::*;

type Log = Rc<RefCell<Vec<String>>>;

/// A probe filter that records its in/out invocations and stamps the TOS
/// byte with its tag in the out pass.
struct Probe {
    tag: &'static str,
    priority: Priority,
    caps: Capabilities,
    log: Log,
    stamp: Option<u8>,
    drop: bool,
}

impl Filter for Probe {
    fn kind(&self) -> &'static str {
        "probe"
    }
    fn priority(&self) -> Priority {
        self.priority
    }
    fn capabilities(&self) -> Capabilities {
        self.caps
    }
    fn on_in(&mut self, _ctx: &mut FilterCtx<'_>, _key: StreamKey, _pkt: &Packet) {
        self.log.borrow_mut().push(format!("in:{}", self.tag));
    }
    fn on_out(&mut self, _ctx: &mut FilterCtx<'_>, _key: StreamKey, pkt: &mut Packet) -> Verdict {
        self.log.borrow_mut().push(format!("out:{}", self.tag));
        if let Some(stamp) = self.stamp {
            pkt.ip.tos = stamp;
        }
        if self.drop {
            Verdict::Drop
        } else {
            Verdict::Continue
        }
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

struct World {
    engine: FilterEngine,
    rng: SmallRng,
    log: Log,
}

fn build(probes: Vec<(&'static str, Priority, Capabilities, Option<u8>, bool)>) -> World {
    let log: Log = Rc::default();
    let mut catalog = FilterCatalog::new();
    for (tag, priority, caps, stamp, drop) in probes {
        let log = log.clone();
        catalog.register_loaded(
            tag,
            Box::new(move |_args| {
                Ok(Box::new(Probe {
                    tag,
                    priority,
                    caps,
                    log: log.clone(),
                    stamp,
                    drop,
                }))
            }),
        );
    }
    World {
        engine: FilterEngine::new(catalog),
        rng: SmallRng::seed_from_u64(1),
        log,
    }
}

fn pkt() -> Packet {
    let mut seg = TcpSegment::new(7, 1169, 0, 0, TcpFlags::ACK);
    seg.payload = Bytes::from_static(b"payload");
    Packet::tcp(
        "11.11.10.99".parse().unwrap(),
        "11.11.10.10".parse().unwrap(),
        seg,
    )
}

#[test]
fn in_top_down_out_bottom_up() {
    let all = Capabilities::all();
    let mut w = build(vec![
        ("hi", Priority::Highest, all, None, false),
        ("mid", Priority::Normal, all, None, false),
        ("lo", Priority::Lowest, all, None, false),
    ]);
    for tag in ["hi", "mid", "lo"] {
        w.engine.register(WildKey::ANY, tag, vec![]).unwrap();
    }
    let outs = w
        .engine
        .process(SimTime::ZERO, &mut w.rng, &NullMetrics, pkt());
    assert_eq!(outs.len(), 1);
    assert_eq!(
        *w.log.borrow(),
        vec!["in:hi", "in:mid", "in:lo", "out:lo", "out:mid", "out:hi"],
        "Fig 5.2 ordering"
    );
}

#[test]
fn higher_priority_overrides_lower() {
    let all = Capabilities::all();
    let mut w = build(vec![
        ("hi", Priority::High, all, Some(0xAA), false),
        ("lo", Priority::Low, all, Some(0x55), false),
    ]);
    w.engine.register(WildKey::ANY, "hi", vec![]).unwrap();
    w.engine.register(WildKey::ANY, "lo", vec![]).unwrap();
    let outs = w
        .engine
        .process(SimTime::ZERO, &mut w.rng, &NullMetrics, pkt());
    // Both stamp; the high-priority filter runs last and wins.
    assert_eq!(outs[0].ip.tos, 0xAA);
}

#[test]
fn drop_short_circuits_remaining_out_methods() {
    let all = Capabilities::all();
    let mut w = build(vec![
        ("hi", Priority::High, all, None, false),
        ("dropper", Priority::Low, all, None, true),
    ]);
    w.engine.register(WildKey::ANY, "hi", vec![]).unwrap();
    w.engine.register(WildKey::ANY, "dropper", vec![]).unwrap();
    let outs = w
        .engine
        .process(SimTime::ZERO, &mut w.rng, &NullMetrics, pkt());
    assert!(outs.is_empty(), "packet dropped");
    // Both saw it on the in pass; only the dropper's out method ran.
    assert_eq!(*w.log.borrow(), vec!["in:hi", "in:dropper", "out:dropper"]);
    assert_eq!(w.engine.totals.drops, 1);
}

#[test]
fn unauthorized_modification_blocked() {
    // The probe stamps TOS but declares READ_ONLY: the engine must restore
    // the packet and count a violation (Chapter 9).
    let mut w = build(vec![(
        "rogue",
        Priority::Normal,
        Capabilities::READ_ONLY,
        Some(0xEE),
        false,
    )]);
    w.engine.register(WildKey::ANY, "rogue", vec![]).unwrap();
    let outs = w
        .engine
        .process(SimTime::ZERO, &mut w.rng, &NullMetrics, pkt());
    assert_eq!(outs[0].ip.tos, 0, "modification rolled back");
    let infos = w.engine.instance_infos();
    assert_eq!(infos[0].stats.violations, 1);
    assert!(w
        .engine
        .log
        .iter()
        .any(|l| l.contains("unauthorized modification")));
}

#[test]
fn unauthorized_drop_blocked() {
    let mut w = build(vec![(
        "rogue",
        Priority::Normal,
        Capabilities::READ_ONLY,
        None,
        true,
    )]);
    w.engine.register(WildKey::ANY, "rogue", vec![]).unwrap();
    let outs = w
        .engine
        .process(SimTime::ZERO, &mut w.rng, &NullMetrics, pkt());
    assert_eq!(
        outs.len(),
        1,
        "drop verdict ignored without DROP capability"
    );
    assert_eq!(w.engine.instance_infos()[0].stats.violations, 1);
}

#[test]
fn wildcard_instantiates_per_stream() {
    let all = Capabilities::all();
    let mut w = build(vec![("mid", Priority::Normal, all, None, false)]);
    w.engine.register(WildKey::ANY, "mid", vec![]).unwrap();
    // Two distinct streams → two instances.
    w.engine
        .process(SimTime::ZERO, &mut w.rng, &NullMetrics, pkt());
    let mut p2 = pkt();
    p2.as_tcp_mut().unwrap().src_port = 8;
    w.engine
        .process(SimTime::ZERO, &mut w.rng, &NullMetrics, p2);
    assert_eq!(w.engine.live_instances(), 2);
}

#[test]
fn accounting_tracks_bytes_saved() {
    struct Shrinker;
    impl Filter for Shrinker {
        fn kind(&self) -> &'static str {
            "shrinker"
        }
        fn priority(&self) -> Priority {
            Priority::Normal
        }
        fn capabilities(&self) -> Capabilities {
            Capabilities::MODIFY_PAYLOAD
        }
        fn on_out(
            &mut self,
            _ctx: &mut FilterCtx<'_>,
            _key: StreamKey,
            pkt: &mut Packet,
        ) -> Verdict {
            if let Some(seg) = pkt.as_tcp_mut() {
                seg.payload = Bytes::from_static(b"x");
            }
            Verdict::Continue
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }
    let mut catalog = FilterCatalog::new();
    catalog.register_loaded("shrinker", Box::new(|_| Ok(Box::new(Shrinker))));
    let mut engine = FilterEngine::new(catalog);
    engine.register(WildKey::ANY, "shrinker", vec![]).unwrap();
    let mut rng = SmallRng::seed_from_u64(2);
    engine.process(SimTime::ZERO, &mut rng, &NullMetrics, pkt());
    let stats = engine.instance_infos()[0].stats;
    assert_eq!(stats.pkts_modified, 1);
    assert_eq!(stats.bytes_removed, 6, "7-byte payload shrunk to 1");
}
