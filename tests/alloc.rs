//! Allocation-regression suite: with the `alloc-stats` feature (a counting
//! `#[global_allocator]` in `comma-rt`), the steady-state hot loops must be
//! heap-silent — every buffer they touch is recycled, every payload pooled.
//! Warmup (the first simulated second) may allocate freely; anything after
//! it is a regression.
//!
//! Run with `cargo test --features alloc-stats --test alloc` or via
//! `./scripts/ci.sh alloc`. Without the feature the whole file compiles
//! away.
#![cfg(feature = "alloc-stats")]

use comma_bench::scale::{event_core_alloc_probe, sharded_alloc_probe};

#[test]
fn serial_event_core_is_allocation_free_after_warmup() {
    let (warm, steady) = event_core_alloc_probe(32, 7);
    assert!(warm > 0, "warmup fills recycled buffers, so it must allocate");
    assert_eq!(
        steady, 0,
        "the serial event core allocated {steady} times in steady state \
         (after {warm} warmup allocations)"
    );
}

#[test]
fn sharded_window_loop_is_allocation_free_after_warmup() {
    for workers in [1usize, 2] {
        let (warm, steady) = sharded_alloc_probe(4, workers, 7);
        assert!(warm > 0, "warmup fills lanes and scratch, so it must allocate");
        assert_eq!(
            steady, 0,
            "the sharded window loop ({workers} workers) allocated {steady} \
             times in steady state (after {warm} warmup allocations)"
        );
    }
}
