//! Sharded parallel simulation: determinism, partition invariance, and the
//! partition-aware topology API.
//!
//! The conservative sharded runner (`comma_netsim::shard`) must be a pure
//! performance transform: for one topology and one seed, the merged packet
//! trace and the delivered bytes are byte-identical whether the world runs
//! in one shard, in N shards on one worker, or in N shards on eight
//! workers. These tests pin that property — including a golden digest for
//! the 256-flow workload — and exercise the `TopologyBuilder` validation
//! surface (typed errors, never panics).

use comma_bench::scale::{
    metro_trace_digest, run_sharded_churn, sharded_delivered_digest, sharded_trace_digest,
};
use comma_repro::prelude::*;

/// Golden 256-flow digest: 16 cells × 16 flows × 4096 B, seed 42, captured
/// from the single-shard (serial) build. The sharded run at 4 workers must
/// reproduce it byte-for-byte — this is the acceptance gate for the
/// conservative windowed rounds: lookahead, cross-shard merge order, and
/// the keyed RNG streams together make partitioning invisible.
const GOLDEN_256_FLOW_TRACE: u64 = 0x1bf5_e6b9_957d_87f2;

#[test]
fn golden_256_flow_sharded_trace_matches_serial() {
    let serial = sharded_trace_digest(16, 16, 4_096, 42, 1, 1, true);
    let sharded = sharded_trace_digest(16, 16, 4_096, 42, 4, 1, false);
    assert_eq!(
        serial, sharded,
        "sharded 256-flow trace must be byte-identical to the serial build"
    );
    assert_eq!(
        serial, GOLDEN_256_FLOW_TRACE,
        "256-flow trace digest drifted from the recorded golden"
    );
}

/// Splitting the backbone across shards is a pure partition change: the
/// 256-flow trace with the backbone round-robined over 4 shards must still
/// equal the single-backbone golden. Different cells' wired hosts never
/// interact and RNG streams are keyed, so the only thing the split may
/// change is which worker executes which host.
#[test]
fn backbone_split_preserves_golden_trace() {
    let split = sharded_trace_digest(16, 16, 4_096, 42, 4, 4, false);
    assert_eq!(
        split, GOLDEN_256_FLOW_TRACE,
        "backbone split (4 shards) drifted from the single-backbone golden"
    );
}

/// Property: delivered-bytes digests are invariant across worker counts
/// {1, 2, 4, 8} for several seeds. Workers only change which OS thread
/// drives a shard; every cross-shard effect is barrier-separated and
/// merged in `(time, src_shard, seq)` order, so the digest cannot move.
#[test]
fn delivered_digest_invariant_across_worker_counts_and_seeds() {
    for seed in [1u64, 42, 0xc0ffee] {
        let baseline = sharded_delivered_digest(4, 4, 4_096, seed, 1);
        for workers in [2usize, 4, 8] {
            let d = sharded_delivered_digest(4, 4, 4_096, seed, workers);
            assert_eq!(
                d, baseline,
                "seed {seed}: delivered digest at {workers} workers \
                 diverged from workers=1"
            );
        }
    }
}

/// The 64-flow churn workload (8 cells × 8 flows, per-cell reorder /
/// duplicate / corrupt / link-flap / bandwidth-step plans) must complete
/// every transfer and leave the per-shard conformance oracles clean on
/// the sharded runner.
#[test]
fn sharded_churn_64_flows_is_oracle_clean() {
    let r = run_sharded_churn(8, 8, 4_096, 42, 4);
    assert_eq!(r.delivered, 8 * 8 * 4_096);
    assert!(r.xfer_pkts > 0, "churn run never crossed a shard boundary");
}

/// Delivery coalescing is shard-local state: enabling it on the sharded
/// world must configure every shard (not just the backbone), keep the
/// run worker-invariant, and still deliver every byte. Regression for the
/// cross-shard merge interaction — coalescing batches same-tick deliveries
/// inside a shard but must never batch across the boundary ingest, which
/// would reorder the merged trace between worker counts.
#[test]
fn coalesced_delivery_is_shard_local_and_worker_invariant() {
    let build = |workers: usize| {
        let wireless = || LinkParams::wireless().with_bandwidth(8_000_000);
        let mut spec = CellSpec::new("cell0").wireless(wireless(), wireless());
        for f in 0..4u16 {
            spec = spec.transfer(9000 + f, 16_384);
        }
        let mut world = TopologyBuilder::new(7)
            .backbone(LinkParams::wired().with_latency(SimDuration::from_millis(10)))
            .cell(spec)
            .cell(
                CellSpec::new("cell1")
                    .wireless(wireless(), wireless())
                    .transfer(9000, 16_384),
            )
            .coalesce_delivery(true)
            .workers(workers)
            .build()
            .expect("valid topology");
        world.set_trace_capture(true, 1 << 20);
        world.run_until(SimTime::from_secs(30));
        assert_eq!(world.total_delivered(), 5 * 16_384, "coalesced run lost bytes");
        world.trace_digest()
    };
    assert_eq!(
        build(1),
        build(4),
        "coalesced sharded trace must not depend on worker count"
    );
}

/// Fluid background populations are shard-local state driven by keyed RNG
/// streams, so partitioning must stay invisible with them attached: the
/// metro trace (foreground packets sharing each cell's downlink with 250
/// fluid users) is byte-identical between the single-shard build and the
/// sharded build at 2 workers, and the per-shard conformance oracles stay
/// clean on both.
#[test]
fn metro_fluid_trace_invariant_across_partitioning() {
    let serial = metro_trace_digest(2, 250, 2, 4_096, 3, 11, 1, true);
    let sharded = metro_trace_digest(2, 250, 2, 4_096, 3, 11, 2, false);
    assert_eq!(
        serial, sharded,
        "fluid-backed metro trace must not depend on the partitioning"
    );
}

/// The metro-scale acceptance run: 32 cells × 1,600 background users
/// (51,200 total — none of them simulated packet-by-packet) under the
/// oracle, byte-identical between the serial and sharded builds. Ignored
/// in the default (debug) test pass; `scripts/ci.sh shard` runs it in
/// release mode.
#[test]
#[ignore = "metro-scale release-mode run; exercised by scripts/ci.sh shard"]
fn metro_scale_50k_bg_users_oracle_clean_and_partition_invariant() {
    let serial = metro_trace_digest(32, 1_600, 4, 8_192, 5, 42, 1, true);
    let sharded = metro_trace_digest(32, 1_600, 4, 8_192, 5, 42, 4, false);
    assert_eq!(
        serial, sharded,
        "metro-scale fluid trace must be byte-identical serial vs sharded"
    );
}

#[test]
fn builder_rejects_empty_topology() {
    assert_eq!(
        TopologyBuilder::new(1).build().err(),
        Some(TopologyError::NoCells)
    );
}

#[test]
fn builder_rejects_duplicate_cell_names() {
    let err = TopologyBuilder::new(1)
        .cell(CellSpec::new("alpha"))
        .cell(CellSpec::new("alpha"))
        .build()
        .err();
    assert_eq!(err, Some(TopologyError::DuplicateCell("alpha".into())));
}

#[test]
fn builder_rejects_wireless_backbone() {
    let err = TopologyBuilder::new(1)
        .cell(CellSpec::new("alpha"))
        .backbone(LinkParams::wireless())
        .build()
        .err();
    assert_eq!(err, Some(TopologyError::WirelessBoundary));
}

#[test]
fn builder_rejects_zero_latency_backbone() {
    let err = TopologyBuilder::new(1)
        .cell(CellSpec::new("alpha"))
        .backbone(LinkParams::wired().with_latency(SimDuration::ZERO))
        .build()
        .err();
    assert_eq!(err, Some(TopologyError::ZeroLookahead));
}

#[test]
fn builder_rejects_lookahead_exceeding_boundary_latency() {
    let err = TopologyBuilder::new(1)
        .cell(CellSpec::new("alpha"))
        .backbone(LinkParams::wired().with_latency(SimDuration::from_millis(5)))
        .lookahead(SimDuration::from_millis(20))
        .build()
        .err();
    assert_eq!(
        err,
        Some(TopologyError::LookaheadExceedsLatency {
            lookahead_us: 20_000,
            latency_us: 5_000,
        })
    );
}

/// Typed errors render as readable diagnostics (the builder never panics
/// on a bad topology).
#[test]
fn builder_errors_display_cleanly() {
    let msg = TopologyError::LookaheadExceedsLatency {
        lookahead_us: 20_000,
        latency_us: 5_000,
    }
    .to_string();
    assert!(msg.contains("20000"), "got: {msg}");
    assert!(msg.contains("5000"), "got: {msg}");
    assert!(!TopologyError::NoCells.to_string().is_empty());
}

/// The `single_shard()` escape hatch runs the identical cell topology
/// inside one simulator — same world surface, no worker threads.
#[test]
fn single_shard_escape_hatch_delivers() {
    let mut world = TopologyBuilder::new(5)
        .cell(
            CellSpec::new("solo")
                .transfer(9000, 20_000)
                .filter("add tcp 0.0.0.0 0 {mobile} 0"),
        )
        .single_shard()
        .build()
        .expect("valid topology");
    world.run_until(SimTime::from_secs(20));
    assert_eq!(world.total_delivered(), 20_000);
    assert_eq!(world.cell_count(), 1);
    assert_eq!(world.cell_name(0), "solo");
}

/// `CommaBuilder::shards(n)` bridges the classic single-cell builder onto
/// the sharded runner: the standard wired↔proxy↔mobile deployment comes
/// up as one cell plus the backbone shard.
#[test]
fn comma_builder_shards_bridge_smoke() {
    let mut world = CommaBuilder::new(9)
        .shards(2)
        .cell(CellSpec::new("extra").transfer(9100, 8_192))
        .build()
        .expect("bridged topology is valid");
    // cell0 comes from the bridge; "extra" is appended.
    assert_eq!(world.cell_count(), 2);
    assert_eq!(world.cell_name(0), "cell0");
    world.run_until(SimTime::from_secs(20));
    assert_eq!(world.total_delivered(), 8_192);
    let stats = world.stats();
    assert!(stats.windows > 0, "sharded runner never opened a window");
}

/// The sharded runner exposes `shard.*` gauges through the merged Obs
/// surface.
#[test]
fn shard_gauges_exported() {
    let mut world = TopologyBuilder::new(3)
        .cell(CellSpec::new("a").transfer(9000, 8_192))
        .cell(CellSpec::new("b").transfer(9000, 8_192))
        .workers(2)
        .build()
        .expect("valid topology");
    world.runner.obs.set_enabled(true);
    world.run_until(SimTime::from_secs(10));
    let get = |k: &str| {
        world
            .runner
            .obs
            .gauge_value("shard", k)
            .unwrap_or_else(|| panic!("missing shard.{k} gauge"))
    };
    assert_eq!(get("shards") as usize, 3, "two cells + backbone");
    assert_eq!(get("workers") as usize, 2);
    assert!(get("windows") > 0.0);
    assert!(get("xfer_pkts") > 0.0);
    assert!(get("lookahead_us") > 0.0);
}
