//! The deterministic fault-injection harness end to end: seeded fault
//! plans perturb live transfers while the conformance oracle watches, and
//! deliberate mutations of the stack prove the oracle actually fires.
//!
//! Three mutation tests cover the classic middlebox sins:
//! - a broken checksum lets corrupted payload through → `payload-integrity`
//! - a proxy acknowledges on the mobile's behalf → `ack-not-from-peer`
//! - a TTSF stops translating uplink ACKs → `delivered-ack-regression`

use comma_repro::prelude::*;
use comma_repro::filters::snoop::Snoop;
use comma_repro::rt::digest::Fnv1a;

/// The suite's standard fault plan: reorder + duplicate + checksum-caught
/// corruption, two flaps, and a bandwidth dip mid-transfer.
fn stress_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .reorder(0.02, SimDuration::from_millis(15))
        .duplicate(0.01)
        .corrupt(0.01)
        .flap(SimTime::from_secs(2), SimDuration::from_millis(400))
        .flap(SimTime::from_secs(6), SimDuration::from_millis(250))
        .bandwidth_step(SimTime::from_secs(4), 1_000_000)
        .bandwidth_step(SimTime::from_secs(8), 5_000_000)
}

/// Runs a 300 KB transfer under the stress plan with the oracle attached;
/// asserts completion and a clean report, returns the packet-trace digest.
fn run_faulted(seed: u64) -> u64 {
    let sender = BulkSender::new((addrs::MOBILE, 9000), 300_000);
    let mut world = CommaBuilder::new(seed)
        .build(vec![Box::new(sender)], vec![Box::new(Sink::new(9000))]);
    world.sp("add tcp 0.0.0.0 0 11.11.10.10 9000");
    world.apply_fault_plan(&stress_plan(seed ^ 0xfa17));
    world.attach_oracle();
    world.sim.trace.set_capture(true);
    world.sim.trace.set_max_entries(1 << 20);
    world.run_until(SimTime::from_secs(120));
    let sink = world.mobile_app_ids[0];
    let bytes = world.mobile_app::<Sink, _>(sink, |s| s.bytes_received);
    assert_eq!(bytes, 300_000, "transfer survives the fault plan");
    world.assert_oracle_clean();
    let mut digest = Fnv1a::new();
    for line in world.sim.trace.render(|_| true) {
        digest.update(line.as_bytes());
        digest.update(b"\n");
    }
    digest.finish()
}

/// A faulted run completes, stays oracle-clean, and the faults really
/// happened (reorders, duplicates, corrupt drops, link flaps).
#[test]
fn faulted_transfer_completes_oracle_clean() {
    let sender = BulkSender::new((addrs::MOBILE, 9000), 300_000);
    let mut world = CommaBuilder::new(901)
        .build(vec![Box::new(sender)], vec![Box::new(Sink::new(9000))]);
    world.sp("add tcp 0.0.0.0 0 11.11.10.10 9000");
    world.apply_fault_plan(&stress_plan(7));
    world.attach_oracle();
    world.run_until(SimTime::from_secs(120));
    let sink = world.mobile_app_ids[0];
    let bytes = world.mobile_app::<Sink, _>(sink, |s| s.bytes_received);
    assert_eq!(bytes, 300_000);
    let stats = world
        .sim
        .fault_stats(world.wireless_ch.0)
        .expect("fault state installed");
    assert!(
        stats.reordered > 0 && stats.duplicated > 0 && stats.corrupt_drops > 0,
        "the plan actually perturbed the downlink: {stats:?}"
    );
    world.assert_oracle_clean();
}

/// Same seed ⇒ byte-identical packet trace, faults and all; different
/// seed ⇒ a different fault schedule.
#[test]
fn faulted_runs_same_seed_byte_identical() {
    let a = run_faulted(902);
    let b = run_faulted(902);
    assert_eq!(a, b, "same (seed, plan) must replay identically");
    let c = run_faulted(903);
    assert_ne!(a, c, "distinct seeds must take distinct fault paths");
}

/// Mutation 1 — a corrupted payload delivered anyway (the packet a broken
/// checksum would have let through) must fail the end-to-end integrity
/// check.
#[test]
fn mutation_corrupt_checksum_bypass_detected() {
    let sender = BulkSender::new((addrs::MOBILE, 9000), 100_000);
    let mut world = CommaBuilder::new(904)
        .build(vec![Box::new(sender)], vec![Box::new(Sink::new(9000))]);
    world.sp("add tcp 0.0.0.0 0 11.11.10.10 9000");
    world.apply_fault_plan(&FaultPlan::new(17).corrupt_deliver(0.01));
    world.attach_oracle();
    world.run_until(SimTime::from_secs(60));
    let report = world.oracle_report();
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.kind == "payload-integrity"),
        "flipped bytes must fail the stream digest:\n{}",
        report.render()
    );
}

/// Mutation 2 — a split-connection mutant (the snoop filter fabricating
/// ACKs on the mobile's behalf) must be flagged: nobody in the middle may
/// acknowledge data the receiver never covered.
#[test]
fn mutation_fabricated_proxy_ack_detected() {
    let sender = BulkSender::new((addrs::MOBILE, 9000), 200_000);
    let mut world = CommaBuilder::new(905)
        .build(vec![Box::new(sender)], vec![Box::new(Sink::new(9000))]);
    world.sp("add snoop 0.0.0.0 0 11.11.10.10 9000");
    world.attach_oracle();
    // Let the connection establish and the snoop instance come live...
    world.run_until(SimTime::from_millis(500));
    world.sim.with_node::<ServiceProxy, _>(world.proxy, |sp| {
        let snoops = sp.engine.instances_as::<Snoop>("snoop");
        assert!(!snoops.is_empty(), "snoop instance live");
        for s in snoops {
            s.mutate_fabricate_acks = true;
        }
    });
    world.run_until(SimTime::from_secs(30));
    let report = world.oracle_report();
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.kind == "ack-not-from-peer"),
        "fabricated ACKs must be flagged:\n{}",
        report.render()
    );
}

/// Mutation 3 — a TTSF that stops translating uplink ACKs (losing the
/// edit-map inverse mapping mid-stream) must be flagged: in a FIFO
/// network the ACK stream delivered to the sender never regresses.
#[test]
fn mutation_skipped_ttsf_ack_translation_detected() {
    let sender = RecordSender::synthetic((addrs::MOBILE, 9000), 2000, 300);
    let mut world = CommaBuilder::new(906)
        .build(vec![Box::new(sender)], vec![Box::new(Sink::new(9000))]);
    world.sp("add removal 0.0.0.0 0 11.11.10.10 9000 2");
    world.attach_oracle();
    // Run with correct translation first (the sender's delivered ACKs are
    // in the original space, ahead of the shortened stream)...
    world.run_until(SimTime::from_secs(1));
    world.sim.with_node::<ServiceProxy, _>(world.proxy, |sp| {
        let ttsfs = sp.engine.instances_as::<Ttsf>("removal");
        assert!(!ttsfs.is_empty(), "removal instance live");
        for t in ttsfs {
            t.mutate_skip_ack_translation = true;
        }
    });
    world.run_until(SimTime::from_secs(40));
    let report = world.oracle_report();
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.kind == "delivered-ack-regression"),
        "untranslated ACKs must be flagged as a regression:\n{}",
        report.render()
    );
}
