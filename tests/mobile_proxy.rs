//! The full architecture in one scenario: Mobile IP mobility underneath,
//! Service Proxies at each cell's gateway, and proxy-state handoff
//! (§10.2.3) moving the service configuration as the mobile moves.
//!
//! Topology:
//!
//! ```text
//! corr ── gw ──┬── HA
//!              ├── SP1 ── FA1 ──(cell 1)── mobile
//!              └── SP2 ── FA2 ──(cell 2)────┘
//! ```

use comma_netsim::prelude::*;
use comma_repro::prelude::*;

struct World {
    sim: Simulator,
    mobile: NodeId,
    sp1: NodeId,
    sp2: NodeId,
    w1: (ChannelId, ChannelId),
    w2: (ChannelId, ChannelId),
}

fn addr(s: &str) -> Ipv4Addr {
    s.parse().unwrap()
}

fn build(seed: u64) -> World {
    let mut sim = Simulator::new(seed);
    let corr_addr = addr("11.11.5.1");
    let ha_addr = addr("11.11.1.1");
    let fa1_addr = addr("11.11.20.1");
    let fa2_addr = addr("11.11.30.1");
    let mobile_home = addr("11.11.1.10");

    let mut corr = Host::new("corr", corr_addr);
    corr.add_app(Box::new(BulkSender::new((mobile_home, 9000), 1_200_000)));
    let corr = sim.add_node(Box::new(corr));

    let mut gw_table = RoutingTable::new();
    gw_table.add("11.11.5.0/24".parse().unwrap(), IfaceId(0));
    gw_table.add("11.11.1.0/24".parse().unwrap(), IfaceId(1));
    gw_table.add("11.11.20.0/24".parse().unwrap(), IfaceId(2));
    gw_table.add("11.11.30.0/24".parse().unwrap(), IfaceId(3));
    let gw = sim.add_node(Box::new(Router::new(
        "gw",
        vec![addr("11.11.5.254")],
        gw_table,
    )));

    let mut ha_table = RoutingTable::new();
    ha_table.add_default(IfaceId(0));
    let ha = sim.add_node(Box::new(HomeAgent::new("ha", ha_addr, ha_table)));

    // Service proxies sit between the gateway and each FA: the routing
    // bottleneck of their cell (§5.1.1).
    let mut sp_table = RoutingTable::new();
    sp_table.add_default(IfaceId(0)); // Toward the gateway.
    sp_table.add("11.11.20.0/24".parse().unwrap(), IfaceId(1));
    let sp1 = sim.add_node(Box::new(ServiceProxy::new(
        "sp1",
        vec![addr("11.11.20.2")],
        sp_table,
        FilterEngine::new(standard_catalog(comma_filters::ALL_FILTERS)),
        seed,
    )));
    let mut sp_table = RoutingTable::new();
    sp_table.add_default(IfaceId(0));
    sp_table.add("11.11.30.0/24".parse().unwrap(), IfaceId(1));
    let sp2 = sim.add_node(Box::new(ServiceProxy::new(
        "sp2",
        vec![addr("11.11.30.2")],
        sp_table,
        FilterEngine::new(standard_catalog(comma_filters::ALL_FILTERS)),
        seed ^ 1,
    )));

    let mut fa_table = RoutingTable::new();
    fa_table.add_default(IfaceId(0));
    let mut fa1_node = ForeignAgent::new("fa1", fa1_addr, fa_table.clone());
    fa1_node.advertise_ifaces = vec![IfaceId(1)];
    let fa1 = sim.add_node(Box::new(fa1_node));
    let mut fa2_node = ForeignAgent::new("fa2", fa2_addr, fa_table);
    fa2_node.advertise_ifaces = vec![IfaceId(1)];
    let fa2 = sim.add_node(Box::new(fa2_node));

    let mut mhost = Host::new("mobile", mobile_home);
    mhost.add_app(Box::new(Sink::new(9000)));
    let mobile = sim.add_node(Box::new(MobileHost::new(mhost, ha_addr)));

    sim.connect(corr, gw, LinkParams::wired(), LinkParams::wired());
    sim.connect(gw, ha, LinkParams::wired(), LinkParams::wired());
    sim.connect(gw, sp1, LinkParams::wired(), LinkParams::wired());
    sim.connect(gw, sp2, LinkParams::wired(), LinkParams::wired());
    sim.connect(sp1, fa1, LinkParams::wired(), LinkParams::wired());
    sim.connect(sp2, fa2, LinkParams::wired(), LinkParams::wired());
    let w1 = sim.connect(fa1, mobile, LinkParams::wireless(), LinkParams::wireless());
    let w2 = sim.connect(fa2, mobile, LinkParams::wireless(), LinkParams::wireless());
    sim.channel_mut(w2.0).params.up = false;
    sim.channel_mut(w2.1).params.up = false;
    World {
        sim,
        mobile,
        sp1,
        sp2,
        w1,
        w2,
    }
}

#[test]
fn services_follow_the_mobile_across_cells() {
    let mut w = build(91);

    // The user arms snoop + housekeeping for the mobile at the current
    // cell's proxy.
    let now = w.sim.now();
    w.sim.with_node::<ServiceProxy, _>(w.sp1, |sp| {
        sp.exec(now, "add tcp 0.0.0.0 0 11.11.1.10 0");
        sp.exec(now, "add snoop 0.0.0.0 0 11.11.1.10 0");
    });

    w.sim.run_until(SimTime::from_secs(3));
    let sp1_pkts = w
        .sim
        .with_node::<ServiceProxy, _>(w.sp1, |sp| sp.engine.totals.pkts);
    assert!(
        sp1_pkts > 0,
        "cell-1 proxy is filtering the tunneled stream"
    );

    // The mobile moves; the operator transfers the service configuration.
    let (w1, w2) = (w.w1, w.w2);
    w.sim.at(SimTime::from_secs(3), move |sim| {
        sim.channel_mut(w1.0).params.up = false;
        sim.channel_mut(w1.1).params.up = false;
        sim.channel_mut(w2.0).params.up = true;
        sim.channel_mut(w2.1).params.up = true;
    });
    w.sim.run_until(SimTime::from_millis(3_100));
    let report = transfer_services(&mut w.sim, w.sp1, w.sp2);
    assert_eq!(report.moved, 2);
    assert_eq!(report.rejected, 0);

    w.sim.run_until(SimTime::from_secs(120));

    // The transfer completed over the new path, serviced by SP2.
    let bytes = w.sim.with_node::<MobileHost, _>(w.mobile, |m| {
        m.host.app_mut::<Sink>(AppId(0)).bytes_received
    });
    assert_eq!(bytes, 1_200_000);
    let sp2_live = w
        .sim
        .with_node::<ServiceProxy, _>(w.sp2, |sp| sp.engine.live_instances());
    assert!(sp2_live > 0, "services instantiated at the new proxy");
    let sp1_regs = w
        .sim
        .with_node::<ServiceProxy, _>(w.sp1, |sp| sp.engine.registrations().len());
    assert_eq!(sp1_regs, 0, "old proxy relinquished the services");
    let handoffs = w.sim.with_node::<MobileHost, _>(w.mobile, |m| m.handoffs);
    assert_eq!(handoffs, 1);
}

#[test]
fn snoop_at_cell_proxy_helps_lossy_cell() {
    // Make cell 1's wireless leg lossy; compare with/without the snoop
    // service at that cell's proxy.
    fn run(seed: u64, with_snoop: bool) -> f64 {
        let mut w = build(seed);
        let (down, _up) = w.w1;
        w.sim.channel_mut(down).params.loss = comma_netsim::link::LossModel::Uniform { p: 0.08 };
        if with_snoop {
            let now = w.sim.now();
            w.sim.with_node::<ServiceProxy, _>(w.sp1, |sp| {
                sp.exec(now, "add snoop 0.0.0.0 0 11.11.1.10 0");
            });
        }
        w.sim.run_until(SimTime::from_secs(300));
        let (bytes, at) = w.sim.with_node::<MobileHost, _>(w.mobile, |m| {
            let s = m.host.app_mut::<Sink>(AppId(0));
            (s.bytes_received, s.last_data_at)
        });
        assert_eq!(bytes, 1_200_000, "with_snoop={with_snoop}");
        at.expect("finished").as_secs_f64()
    }
    let plain = run(92, false);
    let snooped = run(92, true);
    assert!(
        snooped < plain,
        "snoop at the cell proxy speeds the lossy cell: {snooped:.1}s vs {plain:.1}s"
    );
    let _ = SimDuration::from_secs(1);
}
