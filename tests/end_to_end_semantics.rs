//! E14 (behavioural core) — the end-to-end-semantics property of §5.1.2.
//!
//! Split-connection proxies (I-TCP, MOWGLI) acknowledge data at the proxy
//! before it reaches the mobile; if the mobile is never reachable again,
//! the sender believes delivered data that was lost. The TTSF approach
//! never fabricates acknowledgements, so the sender's view of
//! acknowledged data can never exceed what the receiver effectively
//! covered. These tests check that property under the harshest condition:
//! a permanent disconnection mid-transfer.

use comma_repro::prelude::*;

/// With the full TTSF compression service active, a permanent wireless
/// outage must leave the sender with unacknowledged data — the proxy never
/// acked anything on the mobile's behalf.
#[test]
fn proxy_never_acknowledges_for_the_mobile() {
    let sender = BulkSender::new((addrs::MOBILE, 9000), 5_000_000);
    let mut world = CommaBuilder::new(71)
        .double_proxy(true)
        .build(vec![Box::new(sender)], vec![Box::new(Sink::new(9000))]);
    world.sp("add tcp 0.0.0.0 0 11.11.10.10 9000");
    world.sp("add compress 0.0.0.0 0 11.11.10.10 9000 lzss");
    world.stub_sp("add decompress 0.0.0.0 0 11.11.10.10 9000");
    world.attach_oracle();
    // The mobile vanishes early and never returns.
    world.set_wireless_up_at(SimTime::from_millis(800), false);
    world.run_until(SimTime::from_secs(120));

    let sink = world.mobile_app_ids[0];
    let received = world.mobile_app::<Sink, _>(sink, |s| s.bytes_received);
    assert!(
        received < 5_000_000,
        "the outage truncated delivery at {received}"
    );

    let (state, flight, unsent) = world.sim.with_node::<Host, _>(world.wired, |h| {
        let conn = h.connection(comma_tcp::SocketId(0)).expect("socket");
        (conn.state(), conn.flight_size(), conn.unsent_bytes())
    });
    // The sender still holds undelivered bytes as its responsibility: it
    // has NOT been told they arrived.
    assert!(
        flight > 0 || unsent > 0,
        "sender must still own undelivered data (state {state:?})"
    );
    assert_ne!(state, TcpState::Closed, "no phantom successful close");
    let finished = world.wired_app::<BulkSender, _>(world.wired_app_ids[0], |s| s.finished_at);
    assert_eq!(finished, None, "the transfer must not report success");
    world.assert_oracle_clean();
}

/// Conservation check under a lossy run: everything the receiving
/// application consumed was really transmitted end to end — the sink's
/// byte count never exceeds the sender's unique payload bytes (no proxy
/// ever invented stream content), and with an identity service the counts
/// match exactly on completion.
#[test]
fn delivered_bytes_conserve() {
    let sender = BulkSender::new((addrs::MOBILE, 9000), 250_000);
    let mut world = CommaBuilder::new(72)
        .wireless(
            comma_netsim::link::LinkParams::wireless()
                .with_loss(comma_netsim::link::LossModel::Uniform { p: 0.05 }),
            comma_netsim::link::LinkParams::wireless(),
        )
        .build(vec![Box::new(sender)], vec![Box::new(Sink::new(9000))]);
    world.sp("add ttsf 0.0.0.0 0 11.11.10.10 9000");
    world.attach_oracle();
    world.run_until(SimTime::from_secs(120));
    let sink = world.mobile_app_ids[0];
    let received = world.mobile_app::<Sink, _>(sink, |s| s.bytes_received);
    let sent_unique = world.sim.with_node::<Host, _>(world.wired, |h| {
        h.socket_infos()
            .iter()
            .map(|s| s.stats.bytes_sent)
            .sum::<u64>()
    });
    assert!(received as u64 <= sent_unique);
    assert_eq!(
        received, 250_000,
        "identity service: exact delivery despite loss"
    );
    world.assert_oracle_clean();
}
