//! Umbrella crate for the Comma reproduction workspace.
//!
//! Re-exports every member crate so integration tests and examples can use a
//! single dependency root. See `DESIGN.md` for the system inventory.

pub use comma as core;
pub use comma_eem as eem;
pub use comma_filters as filters;
pub use comma_kati as kati;
pub use comma_mobileip as mobileip;
pub use comma_netsim as netsim;
pub use comma_proxy as proxy;
pub use comma_tcp as tcp;
