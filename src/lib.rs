//! Umbrella crate for the Comma reproduction workspace.
//!
//! Re-exports every member crate so integration tests and examples can use a
//! single dependency root. See `DESIGN.md` for the system inventory.

pub use comma as core;
pub use comma_eem as eem;
pub use comma_faultcheck as faultcheck;
pub use comma_filters as filters;
pub use comma_kati as kati;
pub use comma_mc as mc;
pub use comma_mobileip as mobileip;
pub use comma_netsim as netsim;
pub use comma_obs as obs;
pub use comma_proxy as proxy;
pub use comma_rt as rt;
pub use comma_tcp as tcp;

/// The workspace-wide prelude: everything in [`comma::prelude`] plus the
/// Kati control shell. Examples and integration tests import this alone:
///
/// ```
/// use comma_repro::prelude::*;
///
/// let mut world = CommaBuilder::new(1).build(
///     vec![Box::new(BulkSender::new((addrs::MOBILE, 9000), 10_000))],
///     vec![Box::new(Sink::new(9000))],
/// );
/// world.run_until(SimTime::from_secs(5));
/// ```
pub mod prelude {
    pub use comma::prelude::*;
    pub use comma_kati::Kati;
}
