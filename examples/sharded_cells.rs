//! Sharded simulation: many wireless cells running in parallel.
//!
//! Each cell — wired host, Service Proxy, lossy wireless link, mobile
//! host — is declared once with `CellSpec` and becomes its own shard;
//! the wired backbone is the shard boundary, and its 10 ms latency is
//! the conservative lookahead that lets every shard run a window of
//! events without waiting on the others. The result is bit-exact with
//! the serial build at any worker count.
//!
//! Run with: `cargo run --release --example sharded_cells`
//! Try:      `COMMA_SHARDS=8 cargo run --release --example sharded_cells`

use std::time::Instant;

use comma_repro::prelude::*;

fn build(cells: usize, workers: usize) -> ShardedWorld {
    let loss = LossModel::Gilbert {
        p_good_to_bad: 0.02,
        p_bad_to_good: 0.5,
        loss_good: 0.005,
        loss_bad: 0.15,
    };
    let wireless = || LinkParams::wireless().with_loss(loss.clone());
    let mut builder = TopologyBuilder::new(7)
        .backbone(LinkParams::wired().with_latency(SimDuration::from_millis(10)))
        .workers(workers);
    for c in 0..cells {
        builder = builder.cell(
            CellSpec::new(format!("cell{c}"))
                .wireless(wireless(), wireless())
                // Third-party service control, declaratively: the snoop
                // retransmitter guards every cell's wireless hop.
                .filter("add tcp 0.0.0.0 0 {mobile} 0")
                .filter("add snoop 0.0.0.0 0 {mobile} 0")
                .transfer(9000, 100_000)
                .transfer(9001, 100_000),
        );
    }
    builder.build().expect("valid topology")
}

fn main() {
    let cells = 16;
    let workers = std::env::var(COMMA_SHARDS)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let target = (cells as u64) * 2 * 100_000;

    // Serial baseline: workers(1) drives every shard on one thread — it
    // IS the reference event order, not an approximation of it.
    let mut serial = build(cells, 1);
    serial.set_trace_capture(true, 1 << 21);
    let t = Instant::now();
    serial.run_until(SimTime::from_secs(60));
    let serial_wall = t.elapsed();
    assert_eq!(serial.total_delivered(), target);

    let mut sharded = build(cells, workers);
    sharded.set_trace_capture(true, 1 << 21);
    let t = Instant::now();
    sharded.run_until(SimTime::from_secs(60));
    let sharded_wall = t.elapsed();
    assert_eq!(sharded.total_delivered(), target);

    let stats = sharded.stats();
    println!(
        "{cells} cells × 2 flows, {} bytes delivered",
        sharded.total_delivered()
    );
    println!(
        "serial (1 worker): {:>7.1} ms   sharded ({} workers): {:>7.1} ms",
        serial_wall.as_secs_f64() * 1e3,
        workers,
        sharded_wall.as_secs_f64() * 1e3,
    );
    println!(
        "{} sync windows, {} cross-shard packets, {} events",
        stats.windows, stats.xfer_pkts, stats.events
    );

    // The point: parallelism is invisible in the results.
    let (a, b) = (serial.trace_digest(), sharded.trace_digest());
    assert_eq!(a, b, "sharded trace diverged from serial");
    println!("merged trace digest {a:#018x} — identical at 1 and {workers} workers");
}
