//! Transparent compression for a legacy bulk-transfer application over a
//! slow wireless link, using the double-proxy deployment (§8.1.6, §10.2.4).
//!
//! The application is completely unaware: one TCP connection end to end,
//! the bytes it reads are exactly the bytes that were written — only the
//! wireless hop carries compressed blocks.
//!
//! The compressed run enables the unified observability layer and ends by
//! printing `kati obs summary`: per-connection TCP state and per-filter
//! packet/byte/drop accounting from one registry.
//!
//! Run with: `cargo run --example legacy_compression`

use comma_repro::prelude::*;

fn run(compressed: bool) -> (f64, u64) {
    // A 500 KB text-like document over a 128 kbit/s wireless link.
    let sender = BulkSender::new((addrs::MOBILE, 21), 500_000).with_pattern(|i| {
        b"Wireless networks are characterized by the generally low QoS... "[i % 64]
    });
    let mut world = CommaBuilder::new(17)
        .double_proxy(true)
        .observability(compressed)
        .wireless(
            LinkParams::wireless().with_bandwidth(128_000),
            LinkParams::wireless().with_bandwidth(128_000),
        )
        .build(
            vec![Box::new(sender)],
            vec![Box::new(Sink::new(21).with_capture(500_000))],
        );
    if compressed {
        world.sp("add tcp 0.0.0.0 0 11.11.10.10 21");
        world.sp("add compress 0.0.0.0 0 11.11.10.10 21 lzss");
        world.stub_sp("add decompress 0.0.0.0 0 11.11.10.10 21");
    }
    world.run_until(SimTime::from_secs(300));
    let sink = world.mobile_app_ids[0];
    let (bytes, capture, finished) = world.mobile_app::<Sink, _>(sink, |s| {
        (s.bytes_received, s.capture.clone(), s.last_data_at)
    });
    assert_eq!(bytes, 500_000, "full delivery");
    // Byte-exact: the legacy client reads precisely what the server wrote.
    for (i, b) in capture.iter().enumerate() {
        assert_eq!(
            *b,
            b"Wireless networks are characterized by the generally low QoS... "[i % 64]
        );
    }
    if compressed {
        // The third-party view: what the transparency machinery did,
        // straight from the unified observability registry.
        let mut kati = Kati::new(world.proxy);
        let summary = kati.exec(&mut world.sim, "obs summary");
        println!("kati> obs summary\n{summary}");
    }
    (
        finished.map(|t| t.as_secs_f64()).unwrap_or(f64::NAN),
        world.wireless_down_bytes(),
    )
}

fn main() {
    println!("500 KB transfer to a mobile over a 128 kbit/s wireless link\n");
    let (t_plain, wire_plain) = run(false);
    println!("plain:      {t_plain:6.1}s, {wire_plain} bytes over the air");
    let (t_comp, wire_comp) = run(true);
    println!("compressed: {t_comp:6.1}s, {wire_comp} bytes over the air");
    println!(
        "\n{:.1}x faster, {:.0}% fewer wireless bytes — with byte-exact delivery and",
        t_plain / t_comp,
        100.0 * (1.0 - wire_comp as f64 / wire_plain as f64)
    );
    println!("no change to either end of the legacy application.");
}
