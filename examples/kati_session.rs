//! The Kati session of Figs 7.1–7.4: monitor streams, watch the network,
//! and add a transparent service to a live stream from the shell.
//!
//! Run with: `cargo run --example kati_session`

use comma_repro::prelude::*;

fn main() {
    let sender = BulkSender::new((comma::addrs::MOBILE, 9000), 3_000_000);
    let mut world =
        CommaBuilder::new(7).build(vec![Box::new(sender)], vec![Box::new(Sink::new(9000))]);
    let proxy = world.proxy;
    let hub = world.hub.clone();
    let mut kati = Kati::new(proxy).with_hub(hub);

    // Fig 7.1 — the main window: streams currently passing the proxy.
    world.run_until(SimTime::from_secs(1));
    for cmd in ["streams", "stats"] {
        let out = kati.exec(&mut world.sim, cmd);
        println!("kati> {cmd}\n{out}");
    }

    // Fig 7.2 — the xnetload window: wireless link load.
    let out = kati.exec(&mut world.sim, "netload 2 60");
    println!("kati> netload 2 60\n{out}");

    // Fig 7.3 — adding a service: here through the layered service
    // abstraction (§10.2.1) rather than a raw filter stack.
    let service = find_service("summary-only").expect("catalog service");
    println!(
        "kati> (apply service '{}' — {})",
        service.name, service.description
    );
    let wild = world.to_mobile_wild();
    let now = world.sim.now();
    world.sim.with_node::<ServiceProxy, _>(proxy, |sp| {
        apply_service(sp, now, wild, &service);
    });

    // Fig 7.4 — the new service appears on the stream list.
    world.run_until(SimTime::from_secs(2));
    for cmd in [
        "report removal",
        "filters",
        "eem sp wireless.bw",
        "eem sp wireless.qlen",
    ] {
        let out = kati.exec(&mut world.sim, cmd);
        println!("kati> {cmd}\n{out}");
    }

    world.run_until(SimTime::from_secs(40));
    let out = kati.exec(&mut world.sim, "filters");
    println!("kati> filters   (after the transfer)\n{out}");
}
