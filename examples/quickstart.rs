//! Quickstart: build the standard Comma deployment, attach a transparent
//! service from outside the application, and watch it work.
//!
//! Run with: `cargo run --example quickstart`

use comma_repro::prelude::*;

fn main() {
    // A legacy bulk-transfer application: a wired server pushing 500 KB to
    // a mobile client. Neither side knows anything about proxies.
    let app_server = BulkSender::new((addrs::MOBILE, 9000), 500_000);
    let app_client = Sink::new(9000);

    // The standard topology: wired host — Service Proxy — wireless — mobile.
    let mut world =
        CommaBuilder::new(42).build(vec![Box::new(app_server)], vec![Box::new(app_client)]);

    // Third-party service control (this is the thesis's point): the user —
    // not the application — attaches services at the proxy console.
    println!("sp> add tcp 0.0.0.0 0 11.11.10.10 0");
    world.sp("add tcp 0.0.0.0 0 11.11.10.10 0");
    println!("sp> add snoop 0.0.0.0 0 11.11.10.10 0");
    world.sp("add snoop 0.0.0.0 0 11.11.10.10 0");

    world.run_until(SimTime::from_secs(30));

    for cmd in ["report tcp", "report snoop"] {
        let report = world.sp(cmd);
        println!("sp> {cmd}\n{report}");
    }

    let sink = world.mobile_app_ids[0];
    let received = world.mobile_app::<Sink, _>(sink, |s| s.bytes_received);
    let time = world.mobile_app::<Sink, _>(sink, |s| s.last_data_at);
    println!(
        "mobile received {} bytes by {} — transparently serviced, end-to-end TCP intact",
        received,
        time.map(|t| t.to_string()).unwrap_or_default()
    );
    assert_eq!(received, 500_000);

    // The same deployment through the partition-aware builder: a cell
    // declares the wired host, the proxy, and the mobile host as one unit,
    // services attach declaratively, and the identical topology can later
    // scale across worker threads (see `examples/sharded_cells.rs`). The
    // `single_shard()` escape hatch keeps everything in one simulator.
    let mut world = TopologyBuilder::new(42)
        .cell(
            CellSpec::new("quickstart")
                .transfer(9000, 500_000)
                .filter("add tcp 0.0.0.0 0 {mobile} 0")
                .filter("add snoop 0.0.0.0 0 {mobile} 0"),
        )
        .single_shard()
        .build()
        .expect("valid topology");
    world.run_until(SimTime::from_secs(30));
    let delivered = world.total_delivered();
    println!(
        "cell '{}' delivered {delivered} bytes via TopologyBuilder (single shard)",
        world.cell_name(0),
    );
    assert_eq!(delivered, 500_000);
}
