//! The EEM client example of Fig 6.2: register `sysUpTime` with an
//! IN-[0,20] notification range and poll the protected data area.
//!
//! Run with: `cargo run --example eem_monitor`

use comma_repro::prelude::*;

fn main() {
    let mut sim = Simulator::new(62);
    let server_addr = "11.11.10.1".parse().unwrap();
    let client_addr = "11.11.10.10".parse().unwrap();
    let hub = MetricsHub::shared();

    // The EEM server gathers local machine statistics (here: the hub that
    // the sampling loop fills; in the thesis, SNMP and /proc).
    let mut gw = Host::new("gw", server_addr);
    gw.add_app(Box::new(EemServer::new("gw", hub.clone())));

    // The Fig 6.2 client program, step by step:
    //   comma_init();                                  -> MonitorApp/EemClient
    //   comma_attr_setlbound(&attr, 0); setubound(20); setoperator(COMMA_IN);
    //   comma_id_setall(&id, COMMA_SYSUPTIME, 0);
    //   comma_var_register(&id, &attr);
    let mut id = VarId::init();
    id.set_num(comma_eem::COMMA_SYSUPTIME)
        .expect("sysUpTime id");
    let mut attr = Attr::init();
    attr.set_lbound(Value::Long(0));
    attr.set_ubound(Value::Long(20));
    attr.set_operator(Operator::In).expect("IN");
    println!("main: register OK");

    let mut mobile = Host::new("mobile", client_addr);
    let mon = mobile.add_app(Box::new(MonitorApp::new(
        5000,
        server_addr,
        vec![(id, attr, Mode::Periodic)],
    )));

    let s = sim.add_node(Box::new(gw));
    let c = sim.add_node(Box::new(mobile));
    sim.connect(s, c, LinkParams::wired(), LinkParams::wired());

    // Simulate the server host's uptime counter.
    for t in 0..=130u64 {
        let hub = hub.clone();
        sim.at(SimTime::from_secs(t), move |_| {
            hub.borrow_mut()
                .set("gw", "sysUpTime", Value::Long(t as i64));
        });
    }

    // "Continually read from static store": poll the PDA at ten-second
    // intervals for two minutes, printing changes (lines 71-81).
    let mut seen = 0usize;
    for i in 1..=12u64 {
        sim.run_until(SimTime::from_secs(i * 10));
        let fresh: Vec<String> = sim.with_node::<Host, _>(c, |h| {
            let app = h.app_mut::<MonitorApp>(mon);
            let out = app.history[seen..]
                .iter()
                .map(|(_, v)| v.to_string())
                .collect();
            seen = app.history.len();
            out
        });
        for v in fresh {
            println!("main: new value: {v}");
        }
    }
    println!(
        "(updates ceased once sysUpTime left the [0,20] range — exactly the requested signature)"
    );
}
