//! Mobile IP handoff with services following the mobile (§2.1 + §10.2.3):
//! a mobile moves between foreign-agent cells mid-transfer while the
//! transfer keeps its end-to-end TCP connection.
//!
//! Run with: `cargo run --example handoff_demo`

use comma_bench::exps::mip::build;
use comma_repro::prelude::*;

fn main() {
    let sender = BulkSender::new(("11.11.1.10".parse().unwrap(), 9000), 1_000_000);
    let mut w = build(
        5,
        SimDuration::from_millis(20),
        false,
        false,
        vec![Box::new(sender)],
        vec![Box::new(Sink::new(9000))],
    );

    println!("1 MB transfer to mobile 11.11.1.10 (home agent 11.11.1.1), starting in cell FA1");
    w.sim.run_until(SimTime::from_secs(4));
    let care_of = w.sim.with_node::<MobileHost, _>(w.mobile, |m| m.care_of);
    let bytes = w.sim.with_node::<MobileHost, _>(w.mobile, |m| {
        m.host.app_mut::<Sink>(AppId(0)).bytes_received
    });
    println!("t=4s   care-of={:?}  received={bytes}", care_of);

    // The mobile walks out of FA1's cell into FA2's.
    let (w1, w2) = (w.w1, w.w2);
    w.sim.at(SimTime::from_secs(4), move |sim| {
        sim.channel_mut(w1.0).params.up = false;
        sim.channel_mut(w1.1).params.up = false;
        sim.channel_mut(w2.0).params.up = true;
        sim.channel_mut(w2.1).params.up = true;
    });
    println!("t=4s   *** mobile moves: FA1 cell dark, FA2 cell live ***");

    w.sim.run_until(SimTime::from_secs(8));
    let (care_of, handoffs) = w
        .sim
        .with_node::<MobileHost, _>(w.mobile, |m| (m.care_of, m.handoffs));
    println!("t=8s   care-of={:?}  handoffs={handoffs}", care_of);

    w.sim.run_until(SimTime::from_secs(60));
    let bytes = w.sim.with_node::<MobileHost, _>(w.mobile, |m| {
        m.host.app_mut::<Sink>(AppId(0)).bytes_received
    });
    let tunneled = w.sim.with_node::<HomeAgent, _>(w.ha, |h| h.tunneled);
    let via_fa1 = w
        .sim
        .with_node::<ForeignAgent, _>(w.fa1, |f| f.decapsulated);
    let via_fa2 = w
        .sim
        .with_node::<ForeignAgent, _>(w.fa2, |f| f.decapsulated);
    println!(
        "t=60s  received={bytes}  (HA tunneled {tunneled}; via FA1 {via_fa1}, via FA2 {via_fa2})"
    );
    assert_eq!(bytes, 1_000_000);
    println!("\nThe TCP connection survived the handoff: Mobile IP re-routed the tunnel,");
    println!("TCP retransmitted what died in the old cell, and the sender never knew.");
}
