//! Layered real-time video over a degrading wireless link, with and
//! without the adaptive hierarchical-discard service (§8.3.2) — the
//! workload class the thesis's introduction motivates.
//!
//! Run with: `cargo run --example wireless_video`

use comma_repro::prelude::*;

fn run(with_service: bool) {
    let source = MediaSource::new((addrs::MOBILE, 5004), 3, 900, SimDuration::from_millis(40));
    let mut world = CommaBuilder::new(99)
        .wireless(
            LinkParams::wireless().with_queue_limit(24 * 1024),
            LinkParams::wireless(),
        )
        .build(vec![Box::new(source)], vec![Box::new(MediaSink::new(5004))]);

    if with_service {
        // A third party (not the video application!) arms the adaptive
        // service: drop layer 2 when the wireless queue exceeds 4 KB, and
        // layer 1 as well beyond 12 KB.
        world.sp("add hdiscard 0.0.0.0 0 11.11.10.10 5004 adaptive wireless.qlen 3 4000 12000");
    }

    // The link degrades mid-session: 1 Mbit/s → 300 kbit/s.
    let down = world.wireless_ch.0;
    world.sim.at(SimTime::from_secs(5), move |sim| {
        sim.channel_mut(down).params.bandwidth_bps = 300_000;
    });
    world.run_until(SimTime::from_secs(35));

    let sink = world.mobile_app_ids[0];
    println!(
        "--- {} ---",
        if with_service {
            "with hdiscard (adaptive)"
        } else {
            "no service"
        }
    );
    world.mobile_app::<MediaSink, _>(sink, |s| {
        for layer in 0..3 {
            println!(
                "  layer {layer}: {:4} frames, mean latency {:7.1} ms",
                s.received_by_layer[layer],
                s.latency_ms_by_layer[layer].mean()
            );
        }
    });
    let drops = world.sim.channel(world.wireless_ch.0).stats.queue_drops;
    println!("  wireless queue drops (indiscriminate): {drops}");
}

fn main() {
    println!("3-layer video at ~540 kbit/s; the wireless link drops to 300 kbit/s at t=5s\n");
    run(false);
    run(true);
    println!();
    println!("The service sacrifices the enhancement layers deliberately, keeping the");
    println!("base layer fresh — instead of random queue drops hitting every layer.");
}
