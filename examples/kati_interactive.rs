//! An interactive Kati shell over a live simulated deployment.
//!
//! Run with: `cargo run --example kati_interactive`
//! Then try: `streams`, `run 2`, `add snoop 0.0.0.0 0 11.11.10.10 9000`,
//! `filters`, `netload 2`, `help`, `quit`.

use std::io::{BufRead, Write};

use comma_repro::prelude::*;

fn main() {
    // A long-running transfer gives the shell something to watch.
    let sender = BulkSender::new((addrs::MOBILE, 9000), 50_000_000);
    let mut world =
        CommaBuilder::new(1).build(vec![Box::new(sender)], vec![Box::new(Sink::new(9000))]);
    let mut kati = Kati::new(world.proxy).with_hub(world.hub.clone());

    println!("Kati — third-party service control for the Comma proxy");
    println!("A 50 MB transfer to mobile 11.11.10.10 is in progress.");
    println!("Type 'help' for commands, 'run <s>' to advance time, 'quit' to exit.");

    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    loop {
        print!("kati> ");
        std::io::stdout().flush().ok();
        let Some(Ok(line)) = lines.next() else { break };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "quit" || line == "exit" {
            break;
        }
        let out = kati.exec(&mut world.sim, line);
        print!("{out}");
    }
    println!("bye");
}
