//! The SP interface session of Fig 5.3, replayed against the live proxy.
//!
//! Run with: `cargo run --example sp_session`

use comma_repro::prelude::*;

fn main() {
    let sender = BulkSender::new((addrs::MOBILE, 1169), 400_000);
    let mut world = CommaBuilder::new(53)
        .empty_filter_pool()
        .build(vec![Box::new(sender)], vec![Box::new(Sink::new(1169))]);

    println!("styx:~> telnet eramosa 12000");
    println!("Trying 129.97.40.42...");
    println!("Connected to eramosa.uwaterloo.ca.");
    println!("Escape character is '^]'.");

    let run = |world: &mut comma::CommaWorld, cmd: &str| {
        println!("{cmd}");
        let out = world.sp(cmd);
        print!("{out}");
    };

    // Set the stage as the thesis session found it: four filters loaded,
    // the launcher watching the mobile's wild-card key.
    for cmd in [
        "load tcp.so",
        "load launcher.so",
        "load wsize.so",
        "load rdrop.so",
        "add launcher 0.0.0.0 0 11.11.10.10 0 tcp wsize:scale:50",
    ] {
        run(&mut world, cmd);
    }
    world.run_until(SimTime::from_millis(400));

    run(&mut world, "report");
    run(&mut world, "add rdrop 11.11.10.99 1024 11.11.10.10 1169 50");
    world.run_until(SimTime::from_millis(600));
    run(&mut world, "report");
    run(&mut world, "delete wsize 11.11.10.99 1024 11.11.10.10 1169");
    run(&mut world, "report");

    // Let the 50% dropper bite for a while: TCP grinds but stays correct.
    world.run_until(SimTime::from_secs(30));
    let sink = world.mobile_app_ids[0];
    let during = world.mobile_app::<Sink, _>(sink, |s| s.bytes_received);

    // End of the session: remove the dropper and let the stream finish.
    run(&mut world, "delete rdrop 11.11.10.99 1024 11.11.10.10 1169");
    println!("^]");
    println!("telnet> quit");
    println!("Connection closed.");

    world.run_until(SimTime::from_secs(120));
    let received = world.mobile_app::<Sink, _>(sink, |s| s.bytes_received);
    println!();
    println!("(under 50% rdrop the stream crawled to {during} bytes; after the delete it");
    println!(" recovered and delivered all {received} bytes — TCP semantics intact throughout)");
}
