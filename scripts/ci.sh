#!/usr/bin/env bash
# Hermetic CI for the Comma reproduction.
#
# The workspace has zero external dependencies (everything lives in
# crates/rt), so the whole pipeline runs with an empty cargo registry:
# `--offline` is not an optimization here, it is the guarantee the build
# stays hermetic. Run from the repository root:
#
#   ./scripts/ci.sh          # build + tests (+ clippy when installed)
#   ./scripts/ci.sh faults   # also gate on the fault/conformance suite
#   COMMA_BENCH_FAST=1 ./scripts/ci.sh bench   # also smoke the benches
#   ./scripts/ci.sh shard    # also gate the sharded-runner determinism suite
#   ./scripts/ci.sh alloc    # also gate the zero-allocation contract
#   ./scripts/ci.sh mc       # also gate the interleaving model checker

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== tests (offline) =="
cargo test -q --offline --workspace

if cargo clippy --version >/dev/null 2>&1; then
    echo "== clippy =="
    # type-complexity is advisory on the simulator's effect tuples.
    cargo clippy --offline --workspace --all-targets -- \
        -D warnings -A clippy::type_complexity
else
    echo "== clippy not installed; skipping =="
fi

echo "== obs smoke (example emits a non-empty observability summary) =="
out="$(cargo run -q --release --offline --example legacy_compression)"
echo "$out" | grep -q "== tcp connections ==" || {
    echo "obs smoke FAILED: no tcp-connections table in example output" >&2
    exit 1
}
echo "$out" | grep -q "== filters ==" || {
    echo "obs smoke FAILED: no filters table in example output" >&2
    exit 1
}
echo "obs smoke ok"

if [ "${1:-}" = "faults" ]; then
    echo "== fault-injection + conformance gate (release) =="
    # The mutation tests and the churn golden digest run in the workspace
    # suite too, but this gate runs them release-mode and in isolation so a
    # fault-model regression fails with its own banner.
    cargo test -q --release --offline --test faults
    cargo test -q --release --offline --test determinism churn_workload_trace_matches_golden
    cargo test -q --release --offline --test properties oracle_clean_on_wrapped_flows
    echo "fault gate ok"
fi

if [ "${1:-}" = "bench" ]; then
    echo "== bench smoke (COMMA_BENCH_FAST=${COMMA_BENCH_FAST:-0}) =="
    cargo bench -q --offline -p comma-bench --bench micro
    cargo bench -q --offline -p comma-bench --bench experiments

    echo "== macro bench (fast) =="
    COMMA_BENCH_FAST=1 cargo bench -q --offline -p comma-bench --bench macrobench
    if [ ! -s BENCH_macro.json ]; then
        echo "macro bench FAILED: BENCH_macro.json missing or empty" >&2
        exit 1
    fi
    for key in pkts_per_sec engine_ns_per_pkt engine_ns_per_pkt_batched \
               batch_depth_avg events_per_sec exps_wall_ms scale metro \
               fluid_solver_ns; do
        grep -q "\"$key\"" BENCH_macro.json || {
            echo "macro bench FAILED: BENCH_macro.json lacks \"$key\"" >&2
            exit 1
        }
    done
    # Batched dispatch must not be slower than scalar dispatch on the same
    # chain: if coalescing ever regresses below the per-packet path, the
    # API redesign has lost its point.
    scalar="$(sed -n 's/.*"engine_ns_per_pkt": \([0-9.]*\).*/\1/p' BENCH_macro.json | head -n1)"
    batched="$(sed -n 's/.*"engine_ns_per_pkt_batched": \([0-9.]*\).*/\1/p' BENCH_macro.json | head -n1)"
    if [ -z "$scalar" ] || [ -z "$batched" ]; then
        echo "macro bench FAILED: could not parse scalar/batched ns-per-pkt" >&2
        exit 1
    fi
    if ! awk -v b="$batched" -v s="$scalar" 'BEGIN { exit !(b <= s) }'; then
        echo "macro bench FAILED: batched dispatch ($batched ns/pkt) slower than scalar ($scalar ns/pkt)" >&2
        exit 1
    fi
    echo "batched dispatch gate ok ($batched ns/pkt batched vs $scalar scalar)"
    # The many-flows scale workload must report a nonzero events_per_sec
    # for every N.
    for n in 16 64 256; do
        line="$(grep "\"flows_$n\"" BENCH_macro.json)" || {
            echo "macro bench FAILED: BENCH_macro.json lacks \"flows_$n\"" >&2
            exit 1
        }
        rate="$(printf '%s' "$line" | sed -n 's/.*"events_per_sec": \([0-9.]*\).*/\1/p')"
        case "$rate" in
            ''|0|0.0)
                echo "macro bench FAILED: flows_$n events_per_sec missing or zero" >&2
                exit 1
                ;;
        esac
    done
    # The metro hybrid-fidelity block: foreground goodput over a fluid
    # background population, plus the scaling proof — doubling the
    # background population must not grow sim_events by more than ~1.5x,
    # because background cost is re-solve epochs on a fixed time grid,
    # not per-packet events.
    metro="$(sed -n '/"metro": {/,/},/p' BENCH_macro.json)"
    if [ -z "$metro" ]; then
        echo "macro bench FAILED: BENCH_macro.json lacks the \"metro\" block" >&2
        exit 1
    fi
    for key in bg_users fg_goodput_bps events_per_sec sim_events sim_events_2x_bg; do
        printf '%s' "$metro" | grep -q "\"$key\"" || {
            echo "macro bench FAILED: metro block lacks \"$key\"" >&2
            exit 1
        }
    done
    m_goodput="$(printf '%s\n' "$metro" | sed -n 's/.*"fg_goodput_bps": \([0-9.]*\).*/\1/p' | head -n1)"
    case "$m_goodput" in
        ''|0|0.0)
            echo "macro bench FAILED: metro fg_goodput_bps missing or zero" >&2
            exit 1
            ;;
    esac
    m_events="$(printf '%s\n' "$metro" | sed -n 's/.*"sim_events": \([0-9]*\).*/\1/p' | head -n1)"
    m_events_2x="$(printf '%s\n' "$metro" | sed -n 's/.*"sim_events_2x_bg": \([0-9]*\).*/\1/p' | head -n1)"
    if [ -z "$m_events" ] || [ -z "$m_events_2x" ]; then
        echo "macro bench FAILED: could not parse metro sim_events / sim_events_2x_bg" >&2
        exit 1
    fi
    if ! awk -v a="$m_events" -v b="$m_events_2x" 'BEGIN { exit !(b <= a * 1.5) }'; then
        echo "macro bench FAILED: doubling background users grew sim_events $m_events -> $m_events_2x (> 1.5x); background traffic is leaking per-packet cost" >&2
        exit 1
    fi
    echo "metro gate ok (fg_goodput_bps = $m_goodput; sim_events $m_events -> $m_events_2x at 2x bg users)"
    # Parallelism floors key off the single top-level "cores" value the
    # macrobench records (honest available_parallelism, reported once).
    cores="$(sed -n 's/.*"cores": \([0-9]*\).*/\1/p' BENCH_macro.json | head -n1)"
    exps_workers="$(sed -n 's/.*"workers": \([0-9]*\).*/\1/p' BENCH_macro.json | tail -n1)"
    exps_speedup="$(sed -n 's/.*"speedup": \([0-9.]*\).*/\1/p' BENCH_macro.json | head -n1)"
    if [ "${cores:-1}" -ge 4 ] && [ "${exps_workers:-1}" -ge 2 ]; then
        if ! awk -v s="${exps_speedup:-0}" 'BEGIN { exit !(s >= 1.0) }'; then
            echo "macro bench FAILED: exps speedup ${exps_speedup:-?} < 1.0 at $exps_workers workers on $cores cores" >&2
            exit 1
        fi
        echo "exps speedup gate ok (${exps_speedup}x at $exps_workers workers, $cores cores)"
    else
        # On 1-worker hosts the macrobench skips the duplicate parallel run
        # and records "speedup": null, which parses to empty here.
        echo "exps speedup gate skipped ($cores core(s), $exps_workers workers; recorded ${exps_speedup:-null}x)"
    fi
    echo "macro bench ok ($(grep -c '"unix_ts"' BENCH.json) trajectory entries)"
fi

if [ "${1:-}" = "shard" ]; then
    echo "== sharded-runner determinism gate (release) =="
    # Partition invariance (sharded == serial golden), worker invariance,
    # churn-under-sharding, and the TopologyBuilder validation surface.
    cargo test -q --release --offline --test sharding

    echo "== metro-scale hybrid-fidelity gate (release, 51k bg users) =="
    # Too heavy for the debug workspace pass, so it is #[ignore]d there and
    # pinned here: 32 cells x 1,600 fluid background users, serial vs
    # sharded traces byte-identical, per-shard oracles clean.
    cargo test -q --release --offline --test sharding metro_scale -- --ignored

    echo "== flows_10k macro fields =="
    if [ ! -s BENCH_macro.json ]; then
        echo "shard gate FAILED: BENCH_macro.json missing or empty (run the macrobench first)" >&2
        exit 1
    fi
    line="$(grep '"flows_10k"' BENCH_macro.json)" || {
        echo "shard gate FAILED: BENCH_macro.json lacks \"flows_10k\"" >&2
        exit 1
    }
    for key in events_per_sec workers speedup_vs_serial; do
        printf '%s' "$line" | grep -q "\"$key\"" || {
            echo "shard gate FAILED: flows_10k block lacks \"$key\"" >&2
            exit 1
        }
    done
    rate="$(printf '%s' "$line" | sed -n 's/.*"events_per_sec": \([0-9.]*\).*/\1/p')"
    case "$rate" in
        ''|0|0.0)
            echo "shard gate FAILED: flows_10k events_per_sec missing or zero" >&2
            exit 1
            ;;
    esac
    workers="$(printf '%s' "$line" | sed -n 's/.*"workers": \([0-9]*\).*/\1/p')"
    speedup="$(printf '%s' "$line" | sed -n 's/.*"speedup_vs_serial": \([0-9.]*\).*/\1/p')"
    # Honest parallelism is reported once at top level; the floor keys off it.
    cores="$(sed -n 's/.*"cores": \([0-9]*\).*/\1/p' BENCH_macro.json | head -n1)"
    if [ -z "$workers" ] || [ -z "$speedup" ]; then
        echo "shard gate FAILED: could not parse flows_10k workers/speedup" >&2
        exit 1
    fi
    # The ≥2.5× target only means something when the host actually has the
    # cores: on a 1-core CI box the runner records workers=1 and 1.0x, so
    # the speedup gate is enforced where parallel hardware exists.
    if [ "${cores:-1}" -ge 4 ] && [ "$workers" -ge 4 ]; then
        if ! awk -v s="$speedup" 'BEGIN { exit !(s >= 2.5) }'; then
            echo "shard gate FAILED: flows_10k speedup_vs_serial $speedup < 2.5 at $workers workers on $cores cores" >&2
            exit 1
        fi
        echo "shard speedup gate ok (${speedup}x at $workers workers, $cores cores)"
    else
        echo "shard speedup gate skipped (only $cores core(s); recorded ${speedup}x at $workers workers)"
    fi
    echo "shard gate ok"
fi

if [ "${1:-}" = "mc" ]; then
    echo "== model-checker regression suite (release) =="
    cargo test -q --release --offline --test modelcheck

    echo "== exhaustive exploration at shipped bounds (release) =="
    # The runner fails on its own when the exploration is not clean, the
    # dedup ratio sags below 30%, or the known-bug mutation goes
    # undetected; it then splices the coverage numbers into
    # BENCH_macro.json as the "mc" block.
    cargo run -q --release --offline -p comma-mc --example mc_ci
    for key in states_explored states_pruned dedup_ratio states_per_sec wall_ms; do
        grep -q "\"$key\"" BENCH_macro.json || {
            echo "mc gate FAILED: BENCH_macro.json lacks \"$key\"" >&2
            exit 1
        }
    done
    states="$(sed -n 's/.*"states_explored": \([0-9]*\).*/\1/p' BENCH_macro.json | head -n1)"
    case "$states" in
        ''|0)
            echo "mc gate FAILED: states_explored missing or zero" >&2
            exit 1
            ;;
    esac
    viol="$(sed -n 's/.*"violations": \([0-9]*\).*/\1/p' BENCH_macro.json | head -n1)"
    if [ "${viol:-1}" != "0" ]; then
        echo "mc gate FAILED: shipped exploration recorded violations=$viol" >&2
        exit 1
    fi
    echo "mc gate ok ($states states explored)"
fi

if [ "${1:-}" = "alloc" ]; then
    echo "== allocation-accounting gate (alloc-stats) =="
    # The regression tests: steady-state serial event core and sharded
    # window loop must be heap-silent under the counting allocator.
    cargo test -q --release --offline --features alloc-stats --test alloc

    echo "== macro bench (fast, alloc-stats) =="
    COMMA_BENCH_FAST=1 cargo bench -q --offline -p comma-bench \
        --features alloc-stats --bench macrobench
    if [ ! -s BENCH_macro.json ]; then
        echo "alloc gate FAILED: BENCH_macro.json missing or empty" >&2
        exit 1
    fi
    for key in allocs_per_event allocs_per_window windows_skipped; do
        grep -q "\"$key\"" BENCH_macro.json || {
            echo "alloc gate FAILED: BENCH_macro.json lacks \"$key\"" >&2
            exit 1
        }
    done
    apw="$(sed -n 's/.*"allocs_per_window": \([0-9.]*\).*/\1/p' BENCH_macro.json | head -n1)"
    if [ -z "$apw" ]; then
        echo "alloc gate FAILED: allocs_per_window is null (alloc-stats not compiled in?)" >&2
        exit 1
    fi
    if ! awk -v a="$apw" 'BEGIN { exit !(a == 0) }'; then
        echo "alloc gate FAILED: steady-state allocs_per_window = $apw (must be 0)" >&2
        exit 1
    fi
    echo "alloc gate ok (allocs_per_window = $apw)"
fi

echo "ci: all green"
